#include "src/contracts/contracts.h"

#include <unordered_map>

#include "src/crypto/keccak.h"
#include "src/easm/easm.h"

namespace frn {

namespace {

// Shared dispatch prologue: leaves the selector on the stack and falls through
// to a revert for unknown selectors.
constexpr char kTransferTopicHex[] =
    "0xddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef";

const Bytes& CachedAssemble(const char* source) {
  // Each contract's source is assembled once per process.
  static std::unordered_map<const char*, Bytes> cache;
  auto it = cache.find(source);
  if (it == cache.end()) {
    it = cache.emplace(source, Assemble(source)).first;
  }
  return it->second;
}

}  // namespace

Bytes EncodeCall(uint32_t selector, std::initializer_list<U256> args) {
  Bytes out;
  out.reserve(4 + 32 * args.size());
  out.push_back(static_cast<uint8_t>(selector >> 24));
  out.push_back(static_cast<uint8_t>(selector >> 16));
  out.push_back(static_cast<uint8_t>(selector >> 8));
  out.push_back(static_cast<uint8_t>(selector));
  for (const U256& arg : args) {
    auto be = arg.ToBigEndian();
    out.insert(out.end(), be.begin(), be.end());
  }
  return out;
}

Bytes MakeInitCode(const Bytes& runtime) {
  // PUSH2 len; PUSH2 data_offset; PUSH1 0; CODECOPY; PUSH2 len; PUSH1 0; RETURN; <runtime>
  constexpr size_t kPrologue = 15;
  Bytes init;
  auto push2 = [&](size_t v) {
    init.push_back(0x61);
    init.push_back(static_cast<uint8_t>(v >> 8));
    init.push_back(static_cast<uint8_t>(v));
  };
  push2(runtime.size());
  push2(kPrologue);
  init.push_back(0x60);  // PUSH1 0
  init.push_back(0x00);
  init.push_back(0x39);  // CODECOPY
  push2(runtime.size());
  init.push_back(0x60);  // PUSH1 0
  init.push_back(0x00);
  init.push_back(0xf3);  // RETURN
  init.insert(init.end(), runtime.begin(), runtime.end());
  return init;
}

// ---------------------------------------------------------------------------
// PriceFeed — direct translation of the paper's Figure 4.
// ---------------------------------------------------------------------------
Bytes PriceFeed::Code() {
  static const char* kSource = R"(
    ; dispatch
    PUSH 0
    CALLDATALOAD
    PUSH 224
    SHR
    DUP1
    PUSH 1
    EQ
    PUSH @submit
    JUMPI
    DUP1
    PUSH 2
    EQ
    PUSH @latest
    JUMPI
    PUSH 0
    PUSH 0
    REVERT

  submit:               ; [sel]
    PUSH 4
    CALLDATALOAD        ; roundID            (s7)
    PUSH 36
    CALLDATALOAD        ; price              (s7)
    TIMESTAMP           ; curTime            (s8)
    DUP1
    PUSH 300
    SWAP1
    MOD                 ; curTime % 300      (s9)
    SWAP1
    SUB                 ; curRoundID         (s9)
    DUP3
    EQ                  ; roundID == curRoundID (s10)
    PUSH @roundok
    JUMPI
    PUSH 0
    PUSH 0
    REVERT              ; revert()           (s10)
  roundok:              ; [sel, rid, price]
    PUSH 0
    SLOAD               ; activeRoundID      (s12)
    DUP3
    GT                  ; activeRoundID < roundID (s12)
    PUSH @newround
    JUMPI
    ; else branch: aggregate into the running average (s16-s22)
    DUP2
    PUSH 0
    MSTORE              ; mem[0] = roundID
    PUSH 1
    PUSH 32
    MSTORE              ; mem[32] = prices slot index
    PUSH 64
    PUSH 0
    SHA3                ; &prices[roundID]   (s17)
    DUP1
    SLOAD               ; curPrice           (s17)
    PUSH 2
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3                ; &counts[roundID]   (s18)
    DUP1
    SLOAD               ; curCount           (s18)
    DUP1
    DUP4
    MUL                 ; curPrice * curCount (s19)
    DUP6
    ADD                 ; newSum             (s19)
    SWAP1
    PUSH 1
    ADD                 ; newCount           (s20)
    DUP1
    DUP4
    SSTORE              ; counts[roundID] = newCount (s21)
    SWAP1
    DIV                 ; newSum / newCount  (s22)
    DUP4
    SSTORE              ; prices[roundID] = avg (s22)
    STOP
  newround:             ; [sel, rid, price]  (s13-s15)
    DUP2
    PUSH 0
    SSTORE              ; activeRoundID = roundID (s13)
    DUP2
    PUSH 0
    MSTORE
    PUSH 1
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3                ; &prices[roundID]
    DUP2
    SWAP1
    SSTORE              ; prices[roundID] = price (s14)
    PUSH 2
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3                ; &counts[roundID]
    PUSH 1
    SWAP1
    SSTORE              ; counts[roundID] = 1 (s15)
    STOP

  latest:               ; [sel]
    PUSH 0
    SLOAD               ; activeRoundID
    PUSH 0
    MSTORE
    PUSH 1
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3
    SLOAD               ; prices[activeRoundID]
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN
  )";
  return CachedAssemble(kSource);
}

U256 PriceFeed::PriceSlot(const U256& round_id) {
  return Keccak256TwoWords(round_id, U256(1)).ToU256();
}

U256 PriceFeed::CountSlot(const U256& round_id) {
  return Keccak256TwoWords(round_id, U256(2)).ToU256();
}

// ---------------------------------------------------------------------------
// Token — ERC-20 core (transfer / approve / transferFrom / mint / balanceOf).
// ---------------------------------------------------------------------------
Bytes Token::Code() {
  static const std::string kSource = std::string(R"(
    PUSH 0
    CALLDATALOAD
    PUSH 224
    SHR
    DUP1
    PUSH 1
    EQ
    PUSH @transfer
    JUMPI
    DUP1
    PUSH 2
    EQ
    PUSH @approve
    JUMPI
    DUP1
    PUSH 3
    EQ
    PUSH @mint
    JUMPI
    DUP1
    PUSH 4
    EQ
    PUSH @balanceof
    JUMPI
    DUP1
    PUSH 5
    EQ
    PUSH @transferfrom
    JUMPI
    PUSH 0
    PUSH 0
    REVERT

  transfer:             ; [sel]
    PUSH 4
    CALLDATALOAD        ; to
    PUSH 36
    CALLDATALOAD        ; amount
    CALLER              ; from        [sel, to, amt, from]
    PUSH @dotransfer
    JUMP

  dotransfer:           ; [.., to, amt, from]
    DUP1
    PUSH 0
    MSTORE              ; mem[0] = from
    PUSH 0
    PUSH 32
    MSTORE              ; mem[32] = balances slot
    PUSH 64
    PUSH 0
    SHA3                ; &balances[from]
    DUP1
    SLOAD               ; balFrom
    DUP4                ; amt
    DUP2                ; balFrom
    LT                  ; balFrom < amt ?
    ISZERO
    PUSH @sufficient
    JUMPI
    PUSH 0
    PUSH 0
    REVERT
  sufficient:           ; [.., to, amt, from, slotF, balF]
    DUP4
    SWAP1
    SUB                 ; balF - amt
    DUP2
    SSTORE              ; balances[from] = newBalF
    POP                 ; [.., to, amt, from]
    DUP3
    PUSH 0
    MSTORE              ; mem[0] = to
    PUSH 64
    PUSH 0
    SHA3                ; &balances[to]
    DUP1
    SLOAD               ; balTo
    DUP4
    ADD                 ; balTo + amt
    SWAP1
    SSTORE              ; balances[to] = newBalTo
    DUP2
    PUSH 0
    MSTORE              ; mem[0] = amt (event data)
    DUP3                ; to   (topic3)
    DUP2                ; from (topic2)
    PUSH )") + kTransferTopicHex + R"(
    PUSH 32
    PUSH 0
    LOG3                ; Transfer(from, to, amt)
    STOP

  approve:              ; [sel]
    PUSH 4
    CALLDATALOAD        ; spender
    PUSH 36
    CALLDATALOAD        ; amount
    CALLER
    PUSH 0
    MSTORE
    PUSH 1
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3                ; inner = keccak(caller, 1)
    PUSH 32
    MSTORE              ; mem[32] = inner
    DUP2
    PUSH 0
    MSTORE              ; mem[0] = spender
    PUSH 64
    PUSH 0
    SHA3                ; &allowance[caller][spender]
    SSTORE
    STOP

  mint:                 ; [sel]
    PUSH 4
    CALLDATALOAD        ; to
    PUSH 36
    CALLDATALOAD        ; amount
    DUP2
    PUSH 0
    MSTORE
    PUSH 0
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3                ; &balances[to]
    DUP1
    SLOAD
    DUP3
    ADD                 ; bal + amt
    SWAP1
    SSTORE
    PUSH 2
    SLOAD               ; totalSupply
    DUP2
    ADD
    PUSH 2
    SSTORE
    STOP

  balanceof:            ; [sel]
    PUSH 4
    CALLDATALOAD
    PUSH 0
    MSTORE
    PUSH 0
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3
    SLOAD
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN

  transferfrom:         ; [sel]
    PUSH 4
    CALLDATALOAD        ; from
    PUSH 36
    CALLDATALOAD        ; to
    PUSH 68
    CALLDATALOAD        ; amount   [sel, from, to, amt]
    DUP3
    PUSH 0
    MSTORE              ; mem[0] = from
    PUSH 1
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3                ; inner = keccak(from, 1)
    PUSH 32
    MSTORE
    CALLER
    PUSH 0
    MSTORE              ; mem[0] = caller
    PUSH 64
    PUSH 0
    SHA3                ; &allowance[from][caller]
    DUP1
    SLOAD               ; allowance
    DUP3                ; amt
    DUP2                ; allowance
    LT
    ISZERO
    PUSH @tf_ok
    JUMPI
    PUSH 0
    PUSH 0
    REVERT
  tf_ok:                ; [sel, from, to, amt, slotA, allow]
    DUP3
    SWAP1
    SUB                 ; allow - amt
    DUP2
    SSTORE
    POP                 ; [sel, from, to, amt]
    DUP3                ; from on top -> [.., to, amt, from] layout for dotransfer
    PUSH @dotransfer
    JUMP
  )";
  return CachedAssemble(kSource.c_str());
}

U256 Token::BalanceSlot(const Address& holder) {
  return Keccak256TwoWords(holder.ToU256(), U256(0)).ToU256();
}

U256 Token::TransferTopic() { return U256::FromHex(kTransferTopicHex); }

// ---------------------------------------------------------------------------
// AmmPair — constant-product swap calling into the two Token contracts.
// ---------------------------------------------------------------------------
Bytes AmmPair::Code() {
  static const char* kSource = R"(
    PUSH 0
    CALLDATALOAD
    PUSH 224
    SHR
    DUP1
    PUSH 1
    EQ
    PUSH @swap
    JUMPI
    DUP1
    PUSH 2
    EQ
    PUSH @addliq
    JUMPI
    PUSH 0
    PUSH 0
    REVERT

  swap:                 ; [sel]
    PUSH 4
    CALLDATALOAD        ; amountIn
    PUSH 36
    CALLDATALOAD        ; zeroForOne flag
    DUP1
    ISZERO
    PUSH @oneforzero
    JUMPI
    POP                 ; [sel, in]
    PUSH 0
    SLOAD               ; tokenIn  = token0
    PUSH 1
    SLOAD               ; tokenOut = token1
    PUSH 2
    SLOAD               ; reserveIn
    PUSH 3
    SLOAD               ; reserveOut
    PUSH 2              ; reserveIn slot
    PUSH 3              ; reserveOut slot
    PUSH @doswap
    JUMP
  oneforzero:
    POP
    PUSH 1
    SLOAD
    PUSH 0
    SLOAD
    PUSH 3
    SLOAD
    PUSH 2
    SLOAD
    PUSH 3
    PUSH 2
    PUSH @doswap
    JUMP

  doswap:               ; [sel, in, tin, tout, rin, rout, rinSlot, routSlot]
    DUP3                ; rout
    DUP8                ; in
    MUL                 ; rout * in
    DUP5                ; rin
    DUP9                ; in
    ADD                 ; rin + in
    SWAP1
    DIV                 ; out = rout*in / (rin+in)
    DUP5                ; rin
    DUP9                ; in
    ADD                 ; newReserveIn
    DUP4                ; rinSlot
    SSTORE
    DUP1                ; out
    DUP5                ; rout
    SUB                 ; newReserveOut
    DUP3                ; routSlot
    SSTORE
    ; tokenIn.transferFrom(caller, this, in)
    PUSH 0x0000000500000000000000000000000000000000000000000000000000000000
    PUSH 0
    MSTORE
    CALLER
    PUSH 4
    MSTORE
    ADDRESS
    PUSH 36
    MSTORE
    DUP8                ; in
    PUSH 68
    MSTORE
    PUSH 32             ; out size
    PUSH 128            ; out offset
    PUSH 100            ; in size
    PUSH 0              ; in offset
    PUSH 0              ; value
    DUP12               ; tokenIn
    GAS
    CALL
    PUSH @c1ok
    JUMPI
    PUSH 0
    PUSH 0
    REVERT
  c1ok:                 ; [sel, in, tin, tout, rin, rout, rinSlot, routSlot, out]
    ; tokenOut.transfer(caller, out)
    PUSH 0x0000000100000000000000000000000000000000000000000000000000000000
    PUSH 0
    MSTORE
    CALLER
    PUSH 4
    MSTORE
    DUP1                ; out
    PUSH 36
    MSTORE
    PUSH 32
    PUSH 128
    PUSH 68
    PUSH 0
    PUSH 0
    DUP11               ; tokenOut
    GAS
    CALL
    PUSH @c2ok
    JUMPI
    PUSH 0
    PUSH 0
    REVERT
  c2ok:                 ; [.., out]
    PUSH 0
    MSTORE              ; mem[0] = out
    PUSH 32
    PUSH 0
    RETURN

  addliq:               ; [sel]
    PUSH 4
    CALLDATALOAD        ; amount0
    PUSH 36
    CALLDATALOAD        ; amount1
    ; token0.transferFrom(caller, this, amount0)
    PUSH 0x0000000500000000000000000000000000000000000000000000000000000000
    PUSH 0
    MSTORE
    CALLER
    PUSH 4
    MSTORE
    ADDRESS
    PUSH 36
    MSTORE
    DUP2                ; amount0
    PUSH 68
    MSTORE
    PUSH 32
    PUSH 128
    PUSH 100
    PUSH 0
    PUSH 0
    PUSH 0
    SLOAD               ; token0
    GAS
    CALL
    PUSH @al1
    JUMPI
    PUSH 0
    PUSH 0
    REVERT
  al1:
    ; token1.transferFrom(caller, this, amount1)
    PUSH 0x0000000500000000000000000000000000000000000000000000000000000000
    PUSH 0
    MSTORE
    CALLER
    PUSH 4
    MSTORE
    ADDRESS
    PUSH 36
    MSTORE
    DUP1                ; amount1
    PUSH 68
    MSTORE
    PUSH 32
    PUSH 128
    PUSH 100
    PUSH 0
    PUSH 0
    PUSH 1
    SLOAD               ; token1
    GAS
    CALL
    PUSH @al2
    JUMPI
    PUSH 0
    PUSH 0
    REVERT
  al2:                  ; [sel, a0, a1]
    PUSH 2
    SLOAD
    DUP3
    ADD
    PUSH 2
    SSTORE              ; reserve0 += a0
    PUSH 3
    SLOAD
    DUP2
    ADD
    PUSH 3
    SSTORE              ; reserve1 += a1
    STOP
  )";
  return CachedAssemble(kSource);
}

void AmmPair::Deploy(WorldState* state, const Address& pair, const Address& token0,
                     const Address& token1) {
  state->SetCode(pair, Code());
  state->SetStorage(pair, U256(0), token0.ToU256());
  state->SetStorage(pair, U256(1), token1.ToU256());
}

// ---------------------------------------------------------------------------
// Lottery — winner selection from timestamp + coinbase.
// ---------------------------------------------------------------------------
Bytes Lottery::Code() {
  static const char* kSource = R"(
    PUSH 0
    CALLDATALOAD
    PUSH 224
    SHR
    DUP1
    PUSH 1
    EQ
    PUSH @enter
    JUMPI
    DUP1
    PUSH 2
    EQ
    PUSH @draw
    JUMPI
    PUSH 0
    PUSH 0
    REVERT

  enter:
    CALLVALUE
    PUSH 1000000
    EQ
    PUSH @enter_ok
    JUMPI
    PUSH 0
    PUSH 0
    REVERT
  enter_ok:
    PUSH 0
    SLOAD               ; count
    DUP1
    PUSH 0
    MSTORE              ; mem[0] = count
    PUSH 1
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3                ; &players[count]
    CALLER
    SWAP1
    SSTORE              ; players[count] = caller
    PUSH 1
    ADD
    PUSH 0
    SSTORE              ; count += 1
    STOP

  draw:
    PUSH 0
    SLOAD               ; count
    DUP1
    ISZERO
    PUSH @empty
    JUMPI
    TIMESTAMP
    PUSH 0
    MSTORE
    COINBASE
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3                ; entropy = keccak(timestamp, coinbase)
    DUP2
    SWAP1
    MOD                 ; idx = entropy % count
    PUSH 0
    MSTORE
    PUSH 1
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3                ; &players[idx]
    SLOAD               ; winner
    PUSH 0              ; out size
    PUSH 0              ; out offset
    PUSH 0              ; in size
    PUSH 0              ; in offset
    SELFBALANCE         ; value = whole pot
    DUP6                ; winner
    GAS
    CALL                ; pay the winner
    POP
    PUSH 0
    PUSH 0
    SSTORE              ; count = 0
    STOP
  empty:
    PUSH 0
    PUSH 0
    REVERT
  )";
  return CachedAssemble(kSource);
}

// ---------------------------------------------------------------------------
// Proxy — transparent DELEGATECALL forwarder.
// ---------------------------------------------------------------------------
Bytes Proxy::Code() {
  static const char* kSource = R"(
    CALLDATASIZE        ; copy the whole calldata to memory 0
    PUSH 0
    PUSH 0
    CALLDATACOPY
    PUSH 0              ; out size (returndata handled below)
    PUSH 0              ; out offset
    CALLDATASIZE        ; in size
    PUSH 0              ; in offset
    PUSH 100
    SLOAD               ; implementation address
    GAS
    DELEGATECALL        ; run impl code in our storage context
    RETURNDATASIZE      ; bubble the full return/revert data
    PUSH 0
    PUSH 0
    RETURNDATACOPY
    PUSH @ok
    JUMPI
    RETURNDATASIZE
    PUSH 0
    REVERT
  ok:
    RETURNDATASIZE
    PUSH 0
    RETURN
  )";
  return CachedAssemble(kSource);
}

void Proxy::Deploy(WorldState* state, const Address& proxy, const Address& implementation) {
  state->SetCode(proxy, Code());
  state->SetStorage(proxy, U256(kImplSlot), implementation.ToU256());
}

// ---------------------------------------------------------------------------
// Registry — single mapping write/read.
// ---------------------------------------------------------------------------
Bytes Registry::Code() {
  static const char* kSource = R"(
    PUSH 0
    CALLDATALOAD
    PUSH 224
    SHR
    DUP1
    PUSH 1
    EQ
    PUSH @set
    JUMPI
    DUP1
    PUSH 2
    EQ
    PUSH @get
    JUMPI
    PUSH 0
    PUSH 0
    REVERT

  set:
    PUSH 4
    CALLDATALOAD        ; key
    PUSH 0
    MSTORE
    PUSH 0
    PUSH 32
    MSTORE
    PUSH 36
    CALLDATALOAD        ; value
    PUSH 64
    PUSH 0
    SHA3                ; &table[key]
    SSTORE
    STOP

  get:
    PUSH 4
    CALLDATALOAD
    PUSH 0
    MSTORE
    PUSH 0
    PUSH 32
    MSTORE
    PUSH 64
    PUSH 0
    SHA3
    SLOAD
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN
  )";
  return CachedAssemble(kSource);
}

// ---------------------------------------------------------------------------
// Hasher — iterated keccak, gas proportional to the iteration argument.
// ---------------------------------------------------------------------------
void Hasher::SeedState(WorldState* state, const Address& addr) {
  for (uint64_t i = 1; i <= 64; ++i) {
    state->SetStorage(addr, U256(i), Keccak256Word(U256(i)).ToU256());
  }
}

Bytes Hasher::Code() {
  static const char* kSource = R"(
    PUSH 0
    CALLDATALOAD
    PUSH 224
    SHR
    DUP1
    PUSH 1
    EQ
    PUSH @run
    JUMPI
    DUP1
    PUSH 2
    EQ
    PUSH @runstateful
    JUMPI
    PUSH 0
    PUSH 0
    REVERT

  runstateful:          ; [sel]
    PUSH 4
    CALLDATALOAD        ; n
    PUSH 36
    CALLDATALOAD        ; h = seed   [sel, n, h]
  sloop:
    DUP2
    ISZERO
    PUSH @sdone
    JUMPI
    DUP1
    PUSH 63
    AND
    PUSH 1
    ADD                 ; slot = 1 + (h & 63)
    SLOAD               ; v
    XOR                 ; h ^ v
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    SHA3                ; h = keccak(h ^ v)
    SWAP1
    PUSH 1
    SWAP1
    SUB                 ; n -= 1
    SWAP1
    PUSH @sloop
    JUMP
  sdone:                ; [sel, 0, h]
    DUP1
    PUSH 0
    SSTORE
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN

  run:                  ; [sel]
    PUSH 4
    CALLDATALOAD        ; n
    PUSH 36
    CALLDATALOAD        ; h = seed   [sel, n, h]
  loop:
    DUP2
    ISZERO
    PUSH @done
    JUMPI
    PUSH 0
    MSTORE              ; mem[0] = h
    PUSH 32
    PUSH 0
    SHA3                ; h = keccak(h)
    SWAP1
    PUSH 1
    SWAP1
    SUB                 ; n -= 1
    SWAP1
    PUSH @loop
    JUMP
  done:                 ; [sel, 0, h]
    DUP1
    PUSH 0
    SSTORE              ; record the digest
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN
  )";
  return CachedAssemble(kSource);
}

}  // namespace frn
