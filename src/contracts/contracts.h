// The contract catalog: hand-assembled EVM bytecode for the workloads the
// paper's evaluation is driven by. PriceFeed reproduces Figure 4's running
// example; the others model the dominant Ethereum traffic classes (token
// transfers, DEX swaps, block-header-dependent apps, cheap registry writes,
// and compute-heavy transactions for the gas-vs-speedup figure).
//
// ABI convention: calldata = 4-byte big-endian selector, then 32-byte words.
#ifndef SRC_CONTRACTS_CONTRACTS_H_
#define SRC_CONTRACTS_CONTRACTS_H_

#include <initializer_list>

#include "src/common/types.h"
#include "src/evm/world_state.h"

namespace frn {

// Builds calldata for a selector and word arguments.
Bytes EncodeCall(uint32_t selector, std::initializer_list<U256> args);

// Builds creation (init) code that deploys the given runtime bytecode — the
// payload of a contract-creation transaction (tx.to == 0).
Bytes MakeInitCode(const Bytes& runtime);

// ---- PriceFeed (paper §4.2, Figure 4) ----
// Storage: slot 0 = activeRoundID, mapping slot 1 = prices, slot 2 = counts.
struct PriceFeed {
  static constexpr uint32_t kSubmit = 1;  // submit(roundID, price)
  static constexpr uint32_t kLatest = 2;  // latest() -> average price of active round
  static Bytes Code();
  static Bytes SubmitCall(const U256& round_id, const U256& price) {
    return EncodeCall(kSubmit, {round_id, price});
  }
  // Storage slot helpers used by tests.
  static U256 PriceSlot(const U256& round_id);
  static U256 CountSlot(const U256& round_id);
};

// ---- ERC-20 style token ----
// Storage: mapping slot 0 = balances, mapping slot 1 = allowances
// (keccak(spender, keccak(owner, 1))), slot 2 = totalSupply.
struct Token {
  static constexpr uint32_t kTransfer = 1;      // transfer(to, amount)
  static constexpr uint32_t kApprove = 2;       // approve(spender, amount)
  static constexpr uint32_t kMint = 3;          // mint(to, amount)
  static constexpr uint32_t kBalanceOf = 4;     // balanceOf(addr)
  static constexpr uint32_t kTransferFrom = 5;  // transferFrom(from, to, amount)
  static Bytes Code();
  static U256 BalanceSlot(const Address& holder);
  // keccak256("Transfer(address,address,uint256)") — the LOG3 topic.
  static U256 TransferTopic();
};

// ---- Constant-product AMM pair over two Token contracts ----
// Storage: slot 0/1 = token addresses, slot 2/3 = reserves.
struct AmmPair {
  static constexpr uint32_t kSwap = 1;          // swap(amountIn, zeroForOne)
  static constexpr uint32_t kAddLiquidity = 2;  // addLiquidity(amount0, amount1)
  static Bytes Code();
  // Installs the pair and wires its token addresses + initial reserves.
  static void Deploy(WorldState* state, const Address& pair, const Address& token0,
                     const Address& token1);
};

// ---- Lottery: block-header-dependent control flow ----
// Storage: slot 0 = player count, mapping slot 1 = players by index.
struct Lottery {
  static constexpr uint32_t kEnter = 1;  // enter() payable (fixed ticket price)
  static constexpr uint32_t kDraw = 2;   // draw(): winner from timestamp/coinbase
  static constexpr uint64_t kTicketWei = 1'000'000;
  static Bytes Code();
};

// ---- Proxy: transparent DELEGATECALL forwarder ----
// The upgradeable-proxy pattern ubiquitous on mainnet: all calldata is
// forwarded to the implementation whose address sits in storage slot 100;
// the implementation's code runs in the proxy's storage context and the
// return/revert data is bubbled back unchanged.
struct Proxy {
  static constexpr uint64_t kImplSlot = 100;
  static Bytes Code();
  static void Deploy(WorldState* state, const Address& proxy, const Address& implementation);
};

// ---- Registry: minimal one-slot writes ----
// Storage: mapping slot 0 keyed by arbitrary key.
struct Registry {
  static constexpr uint32_t kSet = 1;  // set(key, value)
  static constexpr uint32_t kGet = 2;  // get(key) -> value
  static Bytes Code();
};

// ---- Hasher: compute-heavy loops for the gas/speedup correlation ----
// run() is pure (folds away entirely under specialization); runStateful()
// mixes storage slots 1..64 into every round, so its accelerated program must
// re-read state and relies on memoized shortcuts for its speedup — the
// behaviour of heavyweight DeFi cascades in Figure 13.
struct Hasher {
  static constexpr uint32_t kRun = 1;          // run(iterations, seed) -> digest
  static constexpr uint32_t kRunStateful = 2;  // runStateful(iterations, seed)
  static Bytes Code();
  // Seeds storage slots 1..64 with deterministic values.
  static void SeedState(WorldState* state, const Address& addr);
};

}  // namespace frn

#endif  // SRC_CONTRACTS_CONTRACTS_H_
