// Span-based lifecycle tracer. Spans record wall-clock intervals (mempool
// arrival -> prediction -> speculation -> constraint check -> commit, plus
// block- and network-level phases) into per-thread buffers and export as
// Chrome trace_event JSON (chrome://tracing / Perfetto loadable).
//
// Cost model, in line with the tentpole's near-zero-cost requirement:
//  - Disabled (the default): every span site is one relaxed atomic load and
//    a branch. No allocation, no clock read, no lock.
//  - Enabled: sampled spans read the steady clock twice and append one record
//    to a thread-local buffer under that buffer's (uncontended) mutex.
//  - Per-opcode EVM instrumentation is additionally compile-time gated behind
//    FRN_TRACING (OFF by default) — see src/evm/op_profiler.h.
//
// Determinism: the tracer never touches the simulation RNG or the modeled
// clocks; per-tx sampling is a pure hash of the tx id, so the same scenario
// traces the same transactions at any worker count.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/sync.h"
#include "src/obs/json.h"
#include "src/obs/registry.h"

namespace frn {

#if defined(FRN_TRACING) && FRN_TRACING
inline constexpr bool kFineTracingCompiled = true;
#else
inline constexpr bool kFineTracingCompiled = false;
#endif

// One argument attached to a trace event. A tiny tagged union keeps span
// emission allocation-light (strings only when a string arg is attached).
struct TraceArg {
  enum class Kind { kU64, kF64, kStr };

  static TraceArg U64(const char* key, uint64_t v) {
    TraceArg a;
    a.key = key;
    a.kind = Kind::kU64;
    a.u = v;
    return a;
  }
  static TraceArg F64(const char* key, double v) {
    TraceArg a;
    a.key = key;
    a.kind = Kind::kF64;
    a.f = v;
    return a;
  }
  static TraceArg Str(const char* key, std::string v) {
    TraceArg a;
    a.key = key;
    a.kind = Kind::kStr;
    a.s = std::move(v);
    return a;
  }

  const char* key = "";
  Kind kind = Kind::kU64;
  uint64_t u = 0;
  double f = 0;
  std::string s;
};

// A completed event, already resolved to trace_event fields. `ph` is 'X'
// (complete span, has dur_us) or 'i' (instant).
struct TraceEventRec {
  const char* name = "";
  const char* cat = "";
  char ph = 'X';
  double ts_us = 0;
  double dur_us = 0;
  uint64_t tid = 0;
  uint64_t id = 0;
  std::vector<TraceArg> args;
};

// Process-wide collector of trace events. Disabled by default; Enable()
// arms the runtime gate and (re)starts a fresh capture epoch.
class TraceCollector {
 public:
  struct Options {
    // Fraction of transactions whose per-tx spans are recorded, decided by a
    // deterministic hash of the tx id. Non-tx spans (block/round/dice) are
    // always recorded while enabled.
    double sample_rate = 1.0;
    // Per-thread cap; further events increment dropped_events() instead of
    // growing without bound.
    size_t max_events_per_thread = 1u << 20;
  };

  static TraceCollector& Global();

  // Arms tracing and clears any previously captured events.
  void Enable(Options options);
  void Enable() { Enable(Options()); }
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Deterministic per-tx sampling decision (stateless hash; no RNG).
  bool SampleTx(uint64_t tx_id) const;

  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  // Microseconds since this capture epoch began.
  double NowUs() const;

  TraceCollector() : generation_(FreshGeneration()) {}

  void Emit(TraceEventRec event);
  // Drops all buffers. Like Enable(), must not race with in-flight Emit()
  // calls; callers quiesce workers (between SpecPool batches / runs) first.
  void Clear();

  size_t event_count() const;
  size_t dropped_events() const;

  // All captured events as a Chrome trace_event document, sorted by
  // timestamp, with thread_name metadata for each capture thread.
  JsonValue ToChromeJson() const;
  bool WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    Mutex mu;
    uint64_t tid = 0;  // written once before publication, read-only after
    std::vector<TraceEventRec> events FRN_GUARDED_BY(mu);
    size_t dropped FRN_GUARDED_BY(mu) = 0;
  };

  static uint64_t FreshGeneration();
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> generation_;
  // Deliberately unguarded: written only by Enable(), which per its contract
  // must not race in-flight Emit()/span sites (callers quiesce workers
  // first), and read on every hot span site — guarding them would put a lock
  // on the disabled fast path. TSan remains the checker for this contract.
  double sample_rate_ = 1.0;
  size_t max_events_per_thread_ = 1u << 20;
  // Capture epoch; NowUs() is the stopwatch reading (common/clock.h is the
  // repo's one home for raw std::chrono clock types).
  Stopwatch epoch_;

  mutable Mutex buffers_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ FRN_GUARDED_BY(buffers_mu_);
};

// RAII span. Construct before the timed region; the destructor stamps the
// duration and appends the event. When the collector is disabled or the span
// unsampled, construction is a single relaxed load and destruction a branch.
//
// `mirror` (optional) is a registry SecondsCounter that receives the same
// wall-clock reading the span duration is computed from, whether or not the
// span itself is recorded — this is what keeps the --stats-out aggregates and
// the per-phase trace sums reconciled by construction.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, const char* cat, const char* name,
            SecondsCounter* mirror = nullptr, bool sampled = true)
      : collector_(collector), mirror_(mirror) {
    if (collector_ != nullptr && collector_->enabled() && sampled) {
      event_.name = name;
      event_.cat = cat;
      event_.id = collector_->NextId();
      event_.ts_us = collector_->NowUs();
      active_ = true;
    }
    if (active_ || mirror_ != nullptr) {
      watch_.Restart();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Finish(); }

  // Attaches an argument; no-op when the span is not being recorded.
  void AddArg(TraceArg arg) {
    if (active_) {
      event_.args.push_back(std::move(arg));
    }
  }

  bool active() const { return active_; }

  // Ends the span early (idempotent). Returns the measured wall seconds.
  double Finish() {
    if (finished_) {
      return elapsed_;
    }
    finished_ = true;
    if (active_ || mirror_ != nullptr) {
      elapsed_ = watch_.ElapsedSeconds();
    }
    if (mirror_ != nullptr) {
      mirror_->Add(elapsed_);
    }
    if (active_) {
      event_.dur_us = elapsed_ * 1e6;
      collector_->Emit(std::move(event_));
      active_ = false;
    }
    return elapsed_;
  }

 private:
  TraceCollector* collector_;
  SecondsCounter* mirror_;
  Stopwatch watch_;
  TraceEventRec event_;
  double elapsed_ = 0;
  bool active_ = false;
  bool finished_ = false;
};

// Records a zero-duration instant event (e.g. a tx heard on the mempool, a
// fork observed). No-op while disabled.
void EmitInstant(TraceCollector* collector, const char* cat, const char* name,
                 std::vector<TraceArg> args = {});

}  // namespace frn

#endif  // SRC_OBS_TRACE_H_
