// Minimal JSON document model for the observability layer: a dynamic value
// (null/bool/number/string/array/object), a deterministic serializer, and a
// small recursive-descent parser. The writer produces the machine-readable
// exports (BENCH_*.json, metrics snapshots, Chrome trace_event files); the
// parser exists so the trace-format validation test can load an emitted trace
// back and assert its structure without external dependencies.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace frn {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  JsonValue(int v) : type_(Type::kNumber), number_(v) {}
  JsonValue(int64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  JsonValue(uint64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // ---- Object access ----
  JsonValue& Set(const std::string& key, JsonValue value) {
    type_ = Type::kObject;
    object_[key] = std::move(value);
    return *this;
  }
  // Null when absent (a real null member is indistinguishable, which is fine
  // for the telemetry shapes this handles).
  const JsonValue* Find(const std::string& key) const;
  const std::map<std::string, JsonValue>& object_items() const { return object_; }

  // ---- Array access ----
  void Append(JsonValue value) {
    type_ = Type::kArray;
    array_.push_back(std::move(value));
  }
  size_t size() const { return array_.size(); }
  const JsonValue& at(size_t i) const { return array_[i]; }
  const std::vector<JsonValue>& array_items() const { return array_; }

  // ---- Scalar access (with defaults on type mismatch) ----
  bool AsBool(bool fallback = false) const { return is_bool() ? bool_ : fallback; }
  double AsDouble(double fallback = 0) const { return is_number() ? number_ : fallback; }
  uint64_t AsU64(uint64_t fallback = 0) const {
    return is_number() ? static_cast<uint64_t>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }

  // Serializes the value. indent < 0 => compact single line; otherwise pretty
  // printed with the given indent width. Object keys serialize sorted (map
  // order), so equal documents produce byte-identical output.
  std::string Dump(int indent = -1) const;

  // Parses `text` into `*out`. Returns false (and fills `error` when given)
  // on malformed input or trailing garbage.
  static bool Parse(const std::string& text, JsonValue* out, std::string* error = nullptr);

 private:
  bool is_bool() const { return type_ == Type::kBool; }
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Whole-file helpers; both return false on I/O or parse failure.
bool WriteJsonFile(const std::string& path, const JsonValue& value, int indent = 1);
bool ReadJsonFile(const std::string& path, JsonValue* out, std::string* error = nullptr);

}  // namespace frn

#endif  // SRC_OBS_JSON_H_
