#include "src/obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace frn {

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberInto(double d, std::string* out) {
  if (!std::isfinite(d)) {
    *out += "0";  // JSON has no Inf/NaN; clamp rather than emit invalid text
    return;
  }
  // Integral values within the exact-double range print without a fraction so
  // counters stay grep-able; everything else keeps full double precision.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

// ---- Parser ----

struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ParseLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') {
      ++n;
    }
    if (text.compare(pos, n, literal) != 0) {
      return Fail(std::string("expected '") + literal + "'");
    }
    pos += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) {
        break;
      }
      char esc = text[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogates pass through as
          // replacement; the exports never emit them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos >= text.size()) {
      return Fail("unexpected end of input");
    }
    char c = text[pos];
    if (c == '{') {
      ++pos;
      *out = JsonValue::Object();
      SkipSpace();
      if (Consume('}')) {
        return true;
      }
      for (;;) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        if (!Consume(':')) {
          return Fail("expected ':'");
        }
        JsonValue member;
        if (!ParseValue(&member)) {
          return false;
        }
        out->Set(key, std::move(member));
        if (Consume(',')) {
          continue;
        }
        if (Consume('}')) {
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      *out = JsonValue::Array();
      SkipSpace();
      if (Consume(']')) {
        return true;
      }
      for (;;) {
        JsonValue element;
        if (!ParseValue(&element)) {
          return false;
        }
        out->Append(std::move(element));
        if (Consume(',')) {
          continue;
        }
        if (Consume(']')) {
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      *out = JsonValue(std::move(s));
      return true;
    }
    if (c == 't') {
      if (!ParseLiteral("true")) {
        return false;
      }
      *out = JsonValue(true);
      return true;
    }
    if (c == 'f') {
      if (!ParseLiteral("false")) {
        return false;
      }
      *out = JsonValue(false);
      return true;
    }
    if (c == 'n') {
      if (!ParseLiteral("null")) {
        return false;
      }
      *out = JsonValue();
      return true;
    }
    // Number.
    size_t start = pos;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
    }
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' || text[pos] == 'e' ||
            text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) {
      return Fail("unexpected character");
    }
    char* end = nullptr;
    std::string slice = text.substr(start, pos - start);
    double d = std::strtod(slice.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("bad number");
    }
    *out = JsonValue(d);
    return true;
  }
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      NumberInto(number_, out);
      break;
    case Type::kString:
      EscapeInto(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        newline(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline(depth);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        newline(depth + 1);
        EscapeInto(key, out);
        out->push_back(':');
        if (indent >= 0) {
          out->push_back(' ');
        }
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline(depth);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool JsonValue::Parse(const std::string& text, JsonValue* out, std::string* error) {
  Parser p{text};
  if (!p.ParseValue(out)) {
    if (error != nullptr) {
      *error = p.error;
    }
    return false;
  }
  p.SkipSpace();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    }
    return false;
  }
  return true;
}

bool WriteJsonFile(const std::string& path, const JsonValue& value, int indent) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << value.Dump(indent) << '\n';
  return static_cast<bool>(out);
}

bool ReadJsonFile(const std::string& path, JsonValue* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return JsonValue::Parse(buf.str(), out, error);
}

}  // namespace frn
