#include "src/obs/registry.h"

#include <algorithm>
#include <cmath>

namespace frn {

size_t ObsShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

// ---- HistogramSnapshot ----

double HistogramSnapshot::BucketUpperBound(size_t i) const {
  if (i == 0) {
    return options.lo;
  }
  if (i > options.buckets) {
    return max;  // overflow bucket: best bound we have is the observed max
  }
  return options.lo * std::pow(options.growth, static_cast<double>(i));
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0;
  }
  p = std::min(100.0, std::max(0.0, p));
  double target = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    double lower = i == 0 ? 0 : options.lo * std::pow(options.growth, static_cast<double>(i - 1));
    double upper = BucketUpperBound(i);
    uint64_t next = seen + counts[i];
    if (target <= static_cast<double>(next)) {
      // Linear interpolation within the bucket, clamped to observed extremes.
      double frac = counts[i] == 0
                        ? 0
                        : (target - static_cast<double>(seen)) / static_cast<double>(counts[i]);
      double v = lower + frac * (upper - lower);
      return std::min(std::max(v, min), max);
    }
    seen = next;
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0) {
    *this = other;
    return;
  }
  if (!(options == other.options) || counts.size() != other.counts.size()) {
    return;  // incompatible layouts never merge; caller bug, keep ours
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

JsonValue HistogramSnapshot::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("count", count);
  v.Set("sum", sum);
  v.Set("min", min);
  v.Set("max", max);
  v.Set("mean", Mean());
  v.Set("p50", Percentile(50));
  v.Set("p95", Percentile(95));
  v.Set("p99", Percentile(99));
  JsonValue buckets = JsonValue::Array();
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    JsonValue b = JsonValue::Object();
    b.Set("le", i + 1 == counts.size() ? JsonValue("inf")
                                       : JsonValue(BucketUpperBound(i)));
    b.Set("count", counts[i]);
    buckets.Append(std::move(b));
  }
  v.Set("buckets", std::move(buckets));
  return v;
}

// ---- ExpHistogram ----

ExpHistogram::ExpHistogram(ExpHistogramOptions options)
    : options_(options), counts_(options.buckets + 2) {
  upper_bounds_.reserve(options_.buckets + 1);
  double bound = options_.lo;
  for (size_t i = 0; i <= options_.buckets; ++i) {
    upper_bounds_.push_back(bound);
    bound *= options_.growth;
  }
}

size_t ExpHistogram::BucketFor(double v) const {
  // upper_bounds_[i] is the exclusive upper edge of bucket i; the last slot
  // is the overflow bucket.
  auto it = std::upper_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  return static_cast<size_t>(it - upper_bounds_.begin());
}

void ExpHistogram::Record(double v) {
  if (!(v >= 0)) {
    v = 0;  // NaN/negative clamp keeps the layout's [0, lo) bucket honest
  }
  counts_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  if (!has_value_.exchange(true, std::memory_order_relaxed)) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  double m = min_.load(std::memory_order_relaxed);
  while (v < m && !min_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
  m = max_.load(std::memory_order_relaxed);
  while (v > m && !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot ExpHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.options = options_;
  snap.counts.resize(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void ExpHistogram::Reset() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  has_value_.store(false, std::memory_order_relaxed);
}

// ---- MetricsSnapshot ----

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) {
    counters[name] += v;
  }
  for (const auto& [name, v] : other.seconds) {
    seconds[name] += v;
  }
  for (const auto& [name, v] : other.gauges) {
    auto it = gauges.find(name);
    if (it == gauges.end()) {
      gauges[name] = v;
    } else {
      it->second = std::max(it->second, v);
    }
  }
  for (const auto& [name, v] : other.histograms) {
    histograms[name].Merge(v);
  }
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue v = JsonValue::Object();
  JsonValue c = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    c.Set(name, value);
  }
  JsonValue s = JsonValue::Object();
  for (const auto& [name, value] : seconds) {
    s.Set(name, value);
  }
  JsonValue g = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    g.Set(name, value);
  }
  JsonValue h = JsonValue::Object();
  for (const auto& [name, snap] : histograms) {
    h.Set(name, snap.ToJson());
  }
  v.Set("counters", std::move(c));
  v.Set("seconds", std::move(s));
  v.Set("gauges", std::move(g));
  v.Set("histograms", std::move(h));
  return v;
}

// ---- MetricsRegistry ----

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: outlive all threads
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

SecondsCounter* MetricsRegistry::GetSeconds(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = seconds_[name];
  if (slot == nullptr) {
    slot = std::make_unique<SecondsCounter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

ExpHistogram* MetricsRegistry::GetHistogram(const std::string& name, ExpHistogramOptions options) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<ExpHistogram>(options);
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, s] : seconds_) {
    snap.seconds[name] = s->value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, s] : seconds_) {
    s->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

}  // namespace frn
