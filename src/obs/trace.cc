#include "src/obs/trace.h"

#include <algorithm>

namespace frn {

namespace {

// splitmix64 finalizer: decorrelates sequential tx ids before the sampling
// threshold comparison so sampling stays uniform over any id pattern.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

JsonValue ArgsToJson(const std::vector<TraceArg>& args, uint64_t id) {
  JsonValue obj = JsonValue::Object();
  obj.Set("id", id);
  for (const TraceArg& a : args) {
    switch (a.kind) {
      case TraceArg::Kind::kU64:
        obj.Set(a.key, a.u);
        break;
      case TraceArg::Kind::kF64:
        obj.Set(a.key, a.f);
        break;
      case TraceArg::Kind::kStr:
        obj.Set(a.key, a.s);
        break;
    }
  }
  return obj;
}

}  // namespace

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();  // leaked: outlive all threads
  return *collector;
}

void TraceCollector::Enable(Options options) {
  MutexLock lock(buffers_mu_);
  // These two are deliberately unguarded (see their declarations): Enable's
  // contract is that no Emit/span site is in flight, and buffers_mu_ here
  // protects the buffer sweep below, not these writes.
  sample_rate_ = std::min(1.0, std::max(0.0, options.sample_rate));  // frn:allow(lock-annotation)
  max_events_per_thread_ = options.max_events_per_thread;  // frn:allow(lock-annotation)
  for (auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
  epoch_.Restart();
  next_id_.store(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceCollector::Disable() { enabled_.store(false, std::memory_order_release); }

bool TraceCollector::SampleTx(uint64_t tx_id) const {
  if (sample_rate_ >= 1.0) {
    return true;
  }
  if (sample_rate_ <= 0.0) {
    return false;
  }
  // Top 53 bits -> uniform double in [0,1).
  double u = static_cast<double>(MixId(tx_id) >> 11) * 0x1.0p-53;
  return u < sample_rate_;
}

double TraceCollector::NowUs() const { return epoch_.ElapsedSeconds() * 1e6; }

uint64_t TraceCollector::FreshGeneration() {
  // Globally unique across collectors and Clear() epochs, so a cached buffer
  // pointer can never validate against a different collector or a cleared
  // buffer list that happens to live at the same address.
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceCollector::ThreadBuffer* TraceCollector::BufferForThisThread() {
  struct Cache {
    uint64_t generation = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  uint64_t generation = generation_.load(std::memory_order_acquire);
  if (cache.generation == generation) {
    return cache.buffer;
  }
  MutexLock lock(buffers_mu_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = buffers_.size() + 1;  // tids assigned in registration order
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  cache = Cache{generation_.load(std::memory_order_relaxed), raw};
  return raw;
}

void TraceCollector::Emit(TraceEventRec event) {
  ThreadBuffer* buffer = BufferForThisThread();
  MutexLock lock(buffer->mu);
  if (buffer->events.size() >= max_events_per_thread_) {
    ++buffer->dropped;
    return;
  }
  event.tid = buffer->tid;
  buffer->events.push_back(std::move(event));
}

void TraceCollector::Clear() {
  MutexLock lock(buffers_mu_);
  buffers_.clear();
  generation_.store(FreshGeneration(), std::memory_order_release);
  next_id_.store(1, std::memory_order_relaxed);
}

size_t TraceCollector::event_count() const {
  MutexLock lock(buffers_mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

size_t TraceCollector::dropped_events() const {
  MutexLock lock(buffers_mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

JsonValue TraceCollector::ToChromeJson() const {
  std::vector<TraceEventRec> events;
  size_t thread_count = 0;
  {
    MutexLock lock(buffers_mu_);
    thread_count = buffers_.size();
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mu);
      events.insert(events.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEventRec& a, const TraceEventRec& b) { return a.ts_us < b.ts_us; });

  JsonValue trace_events = JsonValue::Array();
  for (size_t tid = 1; tid <= thread_count; ++tid) {
    JsonValue meta = JsonValue::Object();
    meta.Set("name", "thread_name");
    meta.Set("ph", "M");
    meta.Set("pid", 1);
    meta.Set("tid", tid);
    JsonValue args = JsonValue::Object();
    args.Set("name", tid == 1 ? std::string("coordinator")
                              : "worker-" + std::to_string(tid - 1));
    meta.Set("args", std::move(args));
    trace_events.Append(std::move(meta));
  }
  for (const TraceEventRec& e : events) {
    JsonValue v = JsonValue::Object();
    v.Set("name", e.name);
    v.Set("cat", e.cat);
    v.Set("ph", std::string(1, e.ph));
    v.Set("ts", e.ts_us);
    if (e.ph == 'X') {
      v.Set("dur", e.dur_us);
    }
    if (e.ph == 'i') {
      v.Set("s", "t");  // thread-scoped instant
    }
    v.Set("pid", 1);
    v.Set("tid", e.tid);
    v.Set("args", ArgsToJson(e.args, e.id));
    trace_events.Append(std::move(v));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

bool TraceCollector::WriteChromeTrace(const std::string& path) const {
  return WriteJsonFile(path, ToChromeJson(), /*indent=*/-1);
}

void EmitInstant(TraceCollector* collector, const char* cat, const char* name,
                 std::vector<TraceArg> args) {
  if (collector == nullptr || !collector->enabled()) {
    return;
  }
  TraceEventRec e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.id = collector->NextId();
  e.ts_us = collector->NowUs();
  e.args = std::move(args);
  collector->Emit(std::move(e));
}

}  // namespace frn
