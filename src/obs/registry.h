// Process-wide metrics registry: named counters, gauges, and exponential
// histograms with a lock-free fast path (sharded atomics) and snapshot/merge
// support so per-worker activity can be attributed and aggregated. The
// registry is always on — instruments are cheap enough (one relaxed atomic
// RMW on a cache-line-private shard) to stay enabled in every build — while
// the span tracer in trace.h layers the optional, sampled lifecycle view on
// top of the same numbers.
#ifndef SRC_OBS_REGISTRY_H_
#define SRC_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sync.h"
#include "src/obs/json.h"

namespace frn {

// Stable small index for the calling thread, used to pick a counter shard.
// Indices are handed out once per thread for the process lifetime; shard
// count is a power of two so the modulo is a mask.
size_t ObsShardIndex();

inline constexpr size_t kObsShards = 8;

// Monotonically increasing integer counter. Add() is a relaxed fetch_add on
// a per-thread-striped, cache-line-aligned shard, so concurrent writers do
// not bounce a shared line.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[ObsShardIndex() & (kObsShards - 1)].v.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kObsShards];
};

// Accumulating floating-point counter (total seconds spent in a phase, total
// gas, ...). Same sharding as Counter; the add is a CAS loop because there is
// no atomic fetch_add for double pre-C++20-on-all-targets.
class SecondsCounter {
 public:
  void Add(double delta) {
    std::atomic<double>& cell = shards_[ObsShardIndex() & (kObsShards - 1)].v;
    double cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const {
    double total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<double> v{0};
  };
  Shard shards_[kObsShards];
};

// Last-write-wins scalar with a max variant for high-water marks (queue
// depth, CALL depth). Merging snapshots takes the max, matching the
// high-water interpretation.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Exponential bucket layout: bucket 0 holds [0, lo), bucket i (1-based over
// the configured buckets) holds [lo*growth^(i-1), lo*growth^i), and one
// overflow bucket catches the rest. Defaults cover 1µs..~1h of latency.
struct ExpHistogramOptions {
  double lo = 1e-6;
  double growth = 2.0;
  size_t buckets = 32;

  bool operator==(const ExpHistogramOptions& o) const {
    return lo == o.lo && growth == o.growth && buckets == o.buckets;
  }
};

struct HistogramSnapshot {
  ExpHistogramOptions options;
  std::vector<uint64_t> counts;  // size = options.buckets + 2 (underflow-of-lo + overflow)
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
  // Interpolated percentile (p in [0,100]) from bucket midpoints/bounds.
  double Percentile(double p) const;
  // Upper bound of bucket i (inclusive end of its value range).
  double BucketUpperBound(size_t i) const;
  // Adds `other` in; bucket configurations must match.
  void Merge(const HistogramSnapshot& other);
  JsonValue ToJson() const;
};

class ExpHistogram {
 public:
  explicit ExpHistogram(ExpHistogramOptions options = {});

  void Record(double v);
  HistogramSnapshot Snapshot() const;
  void Reset();
  const ExpHistogramOptions& options() const { return options_; }

 private:
  size_t BucketFor(double v) const;

  ExpHistogramOptions options_;
  std::vector<double> upper_bounds_;  // precomputed lo*growth^i
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
  std::atomic<bool> has_value_{false};
};

// Point-in-time copy of every instrument in a registry. Snapshots from
// different registries (e.g. per-worker locals) merge additively; gauges
// merge by max.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> seconds;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& other);
  JsonValue ToJson() const;
};

// Named-instrument registry. Get* registers on first use and returns a
// pointer that stays valid for the registry's lifetime, so hot call sites
// resolve the name once (function-local static) and then touch only the
// instrument's atomics.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  SecondsCounter* GetSeconds(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  ExpHistogram* GetHistogram(const std::string& name, ExpHistogramOptions options = {});

  MetricsSnapshot Snapshot() const;
  // Zeroes every registered instrument (names stay registered). Tests and
  // scenario runners call this between runs; not safe concurrently with
  // writers that expect exact totals.
  void Reset();

 private:
  // The maps are guarded; the instruments they own are not — a returned
  // Counter* is touched lock-free (sharded atomics) long after Get* returns,
  // and stays valid because instruments are never removed.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ FRN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<SecondsCounter>> seconds_ FRN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ FRN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<ExpHistogram>> histograms_ FRN_GUARDED_BY(mu_);
};

}  // namespace frn

#endif  // SRC_OBS_REGISTRY_H_
