#include "src/replay/recording.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace frn {

namespace {

std::string EncodeTx(const Transaction& tx) {
  std::ostringstream out;
  out << tx.id << ' ' << tx.sender.ToHex() << ' ' << tx.to.ToHex() << ' ' << tx.value.ToHex()
      << ' ' << tx.gas_limit << ' ' << tx.gas_price.ToHex() << ' ' << tx.nonce << ' '
      << BytesToHex(tx.data);
  return out.str();
}

bool DecodeTx(std::istringstream& in, Transaction* tx) {
  std::string sender;
  std::string to;
  std::string value;
  std::string gas_price;
  std::string data;
  if (!(in >> tx->id >> sender >> to >> value >> tx->gas_limit >> gas_price >> tx->nonce >>
        data)) {
    return false;
  }
  tx->sender = Address::FromHex(sender);
  tx->to = Address::FromHex(to);
  tx->value = U256::FromHex(value);
  tx->gas_price = U256::FromHex(gas_price);
  tx->data = HexToBytes(data);
  return true;
}

}  // namespace

Recording CaptureRecording(const SimReport& report, const std::vector<TimedTx>& traffic) {
  Recording recording;
  recording.scenario = report.scenario;
  std::unordered_map<uint64_t, const Transaction*> by_id;
  for (const TimedTx& t : traffic) {
    by_id.emplace(t.tx.id, &t.tx);
  }
  std::unordered_set<uint64_t> heard_ids;
  for (const auto& [id, at] : report.observer_heard) {
    auto it = by_id.find(id);
    if (it != by_id.end()) {
      recording.heard.push_back(Recording::HeardTx{*it->second, at});
    }
    heard_ids.insert(id);
  }
  std::sort(recording.heard.begin(), recording.heard.end(),
            [](const auto& a, const auto& b) { return a.heard_at < b.heard_at; });
  for (const Block& block : report.chain) {
    for (const Transaction& tx : block.txs) {
      if (!heard_ids.contains(tx.id)) {
        recording.unheard.push_back(tx);
      }
    }
  }
  recording.blocks = report.chain;
  recording.block_times = report.block_times;
  return recording;
}

std::string SerializeRecording(const Recording& recording) {
  std::ostringstream out;
  out.precision(9);
  out << "FORERUNNER-RECORDING v1 " << recording.scenario << "\n";
  out << "HEARD " << recording.heard.size() << "\n";
  for (const auto& h : recording.heard) {
    out << std::fixed << h.heard_at << ' ' << EncodeTx(h.tx) << "\n";
  }
  out << "UNHEARD " << recording.unheard.size() << "\n";
  for (const auto& tx : recording.unheard) {
    out << EncodeTx(tx) << "\n";
  }
  out << "BLOCKS " << recording.blocks.size() << "\n";
  for (size_t b = 0; b < recording.blocks.size(); ++b) {
    const Block& block = recording.blocks[b];
    out << std::fixed << recording.block_times[b] << ' ' << block.header.number << ' '
        << block.header.timestamp << ' ' << block.header.coinbase.ToHex() << ' '
        << block.header.gas_limit << ' ' << block.header.difficulty.ToHex() << ' '
        << block.header.chain_id << ' ' << block.header.chain_seed << ' ' << block.txs.size();
    for (const Transaction& tx : block.txs) {
      out << ' ' << tx.id;
    }
    out << "\n";
  }
  return out.str();
}

bool DeserializeRecording(const std::string& text, Recording* out) {
  std::istringstream in(text);
  std::string magic;
  std::string version;
  if (!(in >> magic >> version >> out->scenario) || magic != "FORERUNNER-RECORDING" ||
      version != "v1") {
    return false;
  }
  std::string section;
  size_t count = 0;
  if (!(in >> section >> count) || section != "HEARD") {
    return false;
  }
  std::string line;
  std::getline(in, line);
  std::unordered_map<uint64_t, Transaction> by_id;
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return false;
    }
    std::istringstream ls(line);
    Recording::HeardTx h;
    if (!(ls >> h.heard_at) || !DecodeTx(ls, &h.tx)) {
      return false;
    }
    by_id.emplace(h.tx.id, h.tx);
    out->heard.push_back(std::move(h));
  }
  if (!(in >> section >> count) || section != "UNHEARD") {
    return false;
  }
  std::getline(in, line);
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return false;
    }
    std::istringstream ls(line);
    Transaction tx;
    if (!DecodeTx(ls, &tx)) {
      return false;
    }
    by_id.emplace(tx.id, tx);
    out->unheard.push_back(std::move(tx));
  }
  if (!(in >> section >> count) || section != "BLOCKS") {
    return false;
  }
  std::getline(in, line);
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return false;
    }
    std::istringstream ls(line);
    double at;
    Block block;
    std::string coinbase;
    std::string difficulty;
    size_t n_txs = 0;
    if (!(ls >> at >> block.header.number >> block.header.timestamp >> coinbase >>
          block.header.gas_limit >> difficulty >> block.header.chain_id >>
          block.header.chain_seed >> n_txs)) {
      return false;
    }
    block.header.coinbase = Address::FromHex(coinbase);
    block.header.difficulty = U256::FromHex(difficulty);
    for (size_t t = 0; t < n_txs; ++t) {
      uint64_t id = 0;
      if (!(ls >> id)) {
        return false;
      }
      auto it = by_id.find(id);
      if (it == by_id.end()) {
        return false;  // block references an unknown transaction
      }
      block.txs.push_back(it->second);
    }
    out->blocks.push_back(std::move(block));
    out->block_times.push_back(at);
  }
  return true;
}

bool WriteRecording(const Recording& recording, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << SerializeRecording(recording);
  return static_cast<bool>(out);
}

bool ReadRecording(const std::string& path, Recording* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return DeserializeRecording(buffer.str(), out);
}

SimReport ReplayRecording(const Recording& recording, const std::vector<Node*>& nodes,
                          double pipeline_period) {
  SimReport report;
  report.scenario = recording.scenario;
  report.nodes.resize(nodes.size());

  size_t next_heard = 0;
  auto deliver_heard_until = [&](double t) {
    while (next_heard < recording.heard.size() &&
           recording.heard[next_heard].heard_at <= t) {
      for (Node* node : nodes) {
        node->OnHeard(recording.heard[next_heard].tx, recording.heard[next_heard].heard_at);
      }
      ++next_heard;
    }
  };

  double last_pipeline = 0;
  for (size_t b = 0; b < recording.blocks.size(); ++b) {
    double block_time = recording.block_times[b];
    // Pipeline ticks between blocks, at the recorded cadence.
    for (double t = last_pipeline + pipeline_period; t < block_time; t += pipeline_period) {
      deliver_heard_until(t);
      for (Node* node : nodes) {
        node->RunSpeculationPipeline(t);
      }
    }
    deliver_heard_until(block_time);

    const Block& block = recording.blocks[b];
    Hash first_root;
    for (size_t n = 0; n < nodes.size(); ++n) {
      BlockExecReport exec = nodes[n]->ExecuteBlock(block, block_time);
      if (n == 0) {
        first_root = exec.state_root;
      } else if (!(exec.state_root == first_root)) {
        report.roots_consistent = false;
      }
      report.nodes[n].total_exec_seconds += exec.total_seconds;
      for (TxExecRecord& r : exec.txs) {
        report.nodes[n].records.push_back(r);
        if (r.heard) {
          ++report.heard_count;
          // Heard delay: execution time minus the recorded heard time.
          for (const auto& h : recording.heard) {
            if (h.tx.id == r.tx_id) {
              report.heard_delays.push_back(block_time - h.heard_at);
              break;
            }
          }
        }
      }
    }
    report.chain.push_back(block);
    report.block_times.push_back(block_time);
    ++report.blocks;
    report.txs_packed += block.txs.size();
    for (Node* node : nodes) {
      node->RunSpeculationPipeline(block_time);
    }
    last_pipeline = block_time;
  }

  for (size_t n = 0; n < nodes.size(); ++n) {
    report.nodes[n].speculation_seconds = nodes[n]->total_speculation_seconds();
    report.nodes[n].speculated_exec_seconds = nodes[n]->total_speculated_exec_seconds();
    report.nodes[n].futures_speculated = nodes[n]->futures_speculated();
    report.nodes[n].synthesis_failures = nodes[n]->synthesis_failures();
    report.nodes[n].synthesis_stats = nodes[n]->synthesis_stats();
    report.nodes[n].ap_stats = nodes[n]->ap_stats();
    report.nodes[n].executed_speculations = nodes[n]->executed_speculations();
    report.nodes[n].mempool = nodes[n]->mempool_stats();
    report.nodes[n].spec_cache = nodes[n]->spec_cache_stats();
  }
  return report;
}

}  // namespace frn
