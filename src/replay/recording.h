// The recorder/emulator infrastructure of the paper's §5.1: a live run's
// traffic (pending transactions with the precise times our node heard them)
// and the consensus output (blocks with their arrival times) are captured
// into a Recording, which can be serialized to a file and later replayed
// faithfully against fresh nodes — the paper's R-datasets methodology, used
// to evaluate new versions of Forerunner on historical traffic and to
// validate the emulator against the live run (L1 vs R1).
#ifndef SRC_REPLAY_RECORDING_H_
#define SRC_REPLAY_RECORDING_H_

#include <string>
#include <vector>

#include "src/dice/simulator.h"

namespace frn {

struct Recording {
  std::string scenario;
  // Pending transactions in the order heard, with their heard times.
  struct HeardTx {
    Transaction tx;
    double heard_at = 0;
  };
  std::vector<HeardTx> heard;
  // Transactions that were packed without ever being heard by the observer.
  std::vector<Transaction> unheard;
  // The chain, in order, with block arrival times.
  std::vector<Block> blocks;
  std::vector<double> block_times;
};

// Captures a Recording from a finished live run.
Recording CaptureRecording(const SimReport& report, const std::vector<TimedTx>& traffic);

// Text serialization (deterministic, diffable). Returns false on I/O error.
bool WriteRecording(const Recording& recording, const std::string& path);
bool ReadRecording(const std::string& path, Recording* out);

// In-memory (de)serialization used by the file functions and tests.
std::string SerializeRecording(const Recording& recording);
bool DeserializeRecording(const std::string& text, Recording* out);

// Replays a recording against the given nodes: heard events and blocks are
// delivered at their recorded times, with speculation pipeline ticks between
// them, exactly like the live DiceSimulator drives its nodes.
SimReport ReplayRecording(const Recording& recording, const std::vector<Node*>& nodes,
                          double pipeline_period = 0.25);

}  // namespace frn

#endif  // SRC_REPLAY_RECORDING_H_
