#include "src/core/ap.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>

namespace frn {

namespace {

bool IsExpensive(SOp op) {
  switch (op) {
    case SOp::kKeccak:
    case SOp::kExp:
    case SOp::kDiv:
    case SOp::kSdiv:
    case SOp::kMod:
    case SOp::kSmod:
    case SOp::kAddMod:
    case SOp::kMulMod:
      return true;
    default:
      return false;
  }
}

// ---- Dead code elimination + rollback-free partitioning ----
// Returns the optimized instruction order: constraint section (everything
// guards transitively depend on, guards interleaved in original order)
// followed by the fast path (remaining computes/reads, then effects last by
// construction). Fills stats.dead_eliminated / final_total / final_fast_path.
std::vector<SInstr> OptimizeLinear(LinearIr* ir, size_t* constraint_len) {
  const std::vector<SInstr>& in = ir->instrs;
  size_t n_regs = ir->n_regs;
  std::vector<bool> live(n_regs, false);
  auto mark_args = [&](const SInstr& instr, std::vector<bool>* set) {
    for (const Operand& a : instr.args) {
      if (!a.is_const) {
        (*set)[a.reg] = true;
      }
    }
  };
  for (const SInstr& instr : in) {
    if (instr.op == SOp::kGuard || IsEffect(instr.op)) {
      mark_args(instr, &live);
    }
  }
  for (const Operand& w : ir->return_words) {
    if (!w.is_const) {
      live[w.reg] = true;
    }
  }
  // Backward liveness propagation and dead-instruction marking.
  std::vector<bool> keep(in.size(), false);
  for (size_t i = in.size(); i-- > 0;) {
    const SInstr& instr = in[i];
    if (instr.op == SOp::kGuard || IsEffect(instr.op)) {
      keep[i] = true;
      continue;  // args already marked
    }
    if (instr.dest != kNoReg && live[instr.dest]) {
      keep[i] = true;
      mark_args(instr, &live);
    }
  }
  // Guard dependency closure (what must run before constraint checking).
  std::vector<bool> for_guard(n_regs, false);
  for (const SInstr& instr : in) {
    if (instr.op == SOp::kGuard) {
      mark_args(instr, &for_guard);
    }
  }
  for (size_t i = in.size(); i-- > 0;) {
    const SInstr& instr = in[i];
    if (keep[i] && instr.dest != kNoReg && for_guard[instr.dest]) {
      mark_args(instr, &for_guard);
    }
  }

  std::vector<SInstr> out;
  out.reserve(in.size());
  size_t dead = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    if (!keep[i]) {
      ++dead;
      continue;
    }
    const SInstr& instr = in[i];
    bool constraint_side =
        instr.op == SOp::kGuard || (instr.dest != kNoReg && for_guard[instr.dest]);
    if (constraint_side) {
      out.push_back(instr);
    }
  }
  *constraint_len = out.size();
  for (size_t i = 0; i < in.size(); ++i) {
    if (!keep[i]) {
      continue;
    }
    const SInstr& instr = in[i];
    bool constraint_side =
        instr.op == SOp::kGuard || (instr.dest != kNoReg && for_guard[instr.dest]);
    if (!constraint_side) {
      out.push_back(instr);
    }
  }
  ir->stats.dead_eliminated += dead;
  ir->stats.final_total = out.size();
  ir->stats.final_fast_path = out.size() - *constraint_len;
  return out;
}

uint64_t PairKey(uint32_t a, uint32_t b) { return (static_cast<uint64_t>(a) << 32) | b; }

bool DoneEqual(const ApNode& a, const ApNode& b) {
  return a.status == b.status && a.gas_used == b.gas_used && a.return_words == b.return_words;
}

}  // namespace

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

Ap Ap::Build(LinearIr&& ir, const ApOptions& options) {
  Ap ap;
  ap.n_regs_ = ir.n_regs;
  size_t constraint_len = 0;
  std::vector<SInstr> ordered = OptimizeLinear(&ir, &constraint_len);

  // Which registers are referenced after each position (for shortcut outputs).
  // last_use[r] = last index in `ordered` whose args reference r (or SIZE_MAX
  // if referenced by the return words).
  std::vector<size_t> last_use(ir.n_regs, 0);
  std::vector<bool> used_ever(ir.n_regs, false);
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (const Operand& a : ordered[i].args) {
      if (!a.is_const) {
        last_use[a.reg] = i;
        used_ever[a.reg] = true;
      }
    }
  }
  for (const Operand& w : ir.return_words) {
    if (!w.is_const) {
      last_use[w.reg] = SIZE_MAX;
      used_ever[w.reg] = true;
    }
  }

  // Lay out nodes, inserting shortcut nodes ahead of eligible compute runs.
  auto is_run_member = [&](const SInstr& instr) {
    return IsPureCompute(instr.op) && instr.dest != kNoReg;
  };
  size_t i = 0;
  while (i < ordered.size()) {
    if (!options.enable_shortcuts || !is_run_member(ordered[i])) {
      ApNode node;
      node.kind = ordered[i].op == SOp::kGuard ? ApNode::Kind::kGuard : ApNode::Kind::kInstr;
      if (node.kind == ApNode::Kind::kGuard) {
        node.guard_arg = ordered[i].args[0];
        node.branches.emplace_back(ordered[i].expected,
                                   static_cast<uint32_t>(ap.nodes_.size() + 1));
      } else {
        node.instr = ordered[i];
        node.next = static_cast<uint32_t>(ap.nodes_.size() + 1);
      }
      ap.nodes_.push_back(std::move(node));
      ++i;
      continue;
    }
    // Find the maximal compute run starting at i, then split it into sub-runs
    // of at most `max_subrun_inputs` external inputs each (the paper's
    // nested-shortcut refinement: a sub-segment depending on fewer read-set
    // registers can still be skipped when the enclosing segment cannot).
    size_t j = i;
    while (j < ordered.size() && is_run_member(ordered[j])) {
      ++j;
    }
    size_t k = i;
    while (k < j) {
      // Grow the sub-run until adding the next instruction would exceed the
      // input bound.
      std::vector<RegId> inputs;
      std::vector<bool> internal(ir.n_regs, false);
      bool expensive = false;
      size_t end = k;
      while (end < j) {
        std::vector<RegId> fresh;
        for (const Operand& a : ordered[end].args) {
          if (!a.is_const && !internal[a.reg] &&
              std::find(inputs.begin(), inputs.end(), a.reg) == inputs.end() &&
              std::find(fresh.begin(), fresh.end(), a.reg) == fresh.end()) {
            fresh.push_back(a.reg);
          }
        }
        if (end > k && inputs.size() + fresh.size() > options.max_subrun_inputs) {
          break;
        }
        inputs.insert(inputs.end(), fresh.begin(), fresh.end());
        internal[ordered[end].dest] = true;
        expensive = expensive || IsExpensive(ordered[end].op);
        ++end;
      }
      // Eligible when the inputs-compared-per-instruction-skipped ratio pays
      // off: long runs, expensive instructions, or few-input short runs.
      bool eligible = !inputs.empty() && inputs.size() <= options.max_shortcut_inputs &&
                      (end - k >= options.min_shortcut_len || expensive ||
                       inputs.size() <= end - k);
      size_t shortcut_slot = SIZE_MAX;
      if (eligible) {
        shortcut_slot = ap.nodes_.size();
        ap.nodes_.emplace_back();  // filled in below once skip_to is known
      }
      for (size_t p = k; p < end; ++p) {
        ApNode node;
        node.kind = ApNode::Kind::kInstr;
        node.instr = ordered[p];
        node.next = static_cast<uint32_t>(ap.nodes_.size() + 1);
        ap.nodes_.push_back(std::move(node));
      }
      if (eligible) {
        ApNode& sc = ap.nodes_[shortcut_slot];
        sc.kind = ApNode::Kind::kShortcut;
        sc.inputs = inputs;
        sc.next = static_cast<uint32_t>(shortcut_slot + 1);
        sc.skip_to = static_cast<uint32_t>(ap.nodes_.size());
        sc.skip_count = static_cast<uint32_t>(end - k);
        MemoEntry entry;
        for (RegId r : inputs) {
          entry.in_values.push_back(ir.traced_values[r]);
        }
        for (size_t p = k; p < end; ++p) {
          RegId dest = ordered[p].dest;
          if (used_ever[dest] && (last_use[dest] == SIZE_MAX || last_use[dest] >= end)) {
            entry.outputs.emplace_back(dest, ir.traced_values[dest]);
          }
        }
        sc.entries.push_back(std::move(entry));
      }
      k = end;
    }
    i = j;
  }

  ApNode done;
  done.kind = ApNode::Kind::kDone;
  done.status = ir.status;
  done.gas_used = ir.gas_used;
  done.return_words = ir.return_words;
  ap.nodes_.push_back(std::move(done));
  ap.entry_ = 0;
  ap.stats_.constraint_instrs = constraint_len;
  ap.stats_.fast_path_instrs = ir.stats.final_fast_path;
  ap.synthesis_stats_ = ir.stats;
  ap.RecountStats();
  return ap;
}

void Ap::RecountStats() {
  stats_.nodes = nodes_.size();
  stats_.guard_nodes = 0;
  stats_.shortcut_nodes = 0;
  stats_.instr_nodes = 0;
  stats_.memo_entries = 0;
  stats_.paths = 0;
  for (const ApNode& node : nodes_) {
    switch (node.kind) {
      case ApNode::Kind::kGuard:
        ++stats_.guard_nodes;
        break;
      case ApNode::Kind::kShortcut:
        ++stats_.shortcut_nodes;
        stats_.memo_entries += node.entries.size();
        break;
      case ApNode::Kind::kInstr:
        ++stats_.instr_nodes;
        break;
      case ApNode::Kind::kDone:
        ++stats_.paths;
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

namespace {

// Copies the chain rooted at src[idx] into dst, preserving internal sharing.
uint32_t CopyChainInto(std::vector<ApNode>* dst, const Ap& src_ap, uint32_t idx,
                       std::unordered_map<uint32_t, uint32_t>* copy_map) {
  if (auto it = copy_map->find(idx); it != copy_map->end()) {
    return it->second;
  }
  uint32_t my_idx = static_cast<uint32_t>(dst->size());
  dst->push_back(src_ap.nodes()[idx]);
  copy_map->emplace(idx, my_idx);
  ApNode& node = (*dst)[my_idx];
  switch (node.kind) {
    case ApNode::Kind::kInstr:
      (*dst)[my_idx].next = CopyChainInto(dst, src_ap, node.next, copy_map);
      break;
    case ApNode::Kind::kGuard: {
      auto branches = node.branches;
      for (auto& [value, target] : branches) {
        target = CopyChainInto(dst, src_ap, target, copy_map);
      }
      (*dst)[my_idx].branches = std::move(branches);
      break;
    }
    case ApNode::Kind::kShortcut: {
      uint32_t next = CopyChainInto(dst, src_ap, node.next, copy_map);
      uint32_t skip = CopyChainInto(dst, src_ap, (*dst)[my_idx].skip_to, copy_map);
      (*dst)[my_idx].next = next;
      (*dst)[my_idx].skip_to = skip;
      break;
    }
    case ApNode::Kind::kDone:
      break;
  }
  return my_idx;
}

struct MergeCtx {
  std::vector<ApNode> out;
  std::unordered_map<uint64_t, uint32_t> memo;
  std::unordered_map<uint32_t, uint32_t> copy_a;
  std::unordered_map<uint32_t, uint32_t> copy_b;
  bool failed = false;
};

uint32_t MergeNodes(MergeCtx* ctx, const Ap& a, uint32_t ai, const Ap& b, uint32_t bi) {
  if (ctx->failed) {
    return 0;
  }
  uint64_t key = PairKey(ai, bi);
  if (auto it = ctx->memo.find(key); it != ctx->memo.end()) {
    return it->second;
  }
  const ApNode& na = a.nodes()[ai];
  const ApNode& nb = b.nodes()[bi];
  if (na.kind != nb.kind) {
    ctx->failed = true;
    return 0;
  }
  uint32_t my_idx = static_cast<uint32_t>(ctx->out.size());
  ctx->out.push_back(na);
  ctx->memo.emplace(key, my_idx);
  switch (na.kind) {
    case ApNode::Kind::kInstr: {
      if (!na.instr.SameShape(nb.instr)) {
        ctx->failed = true;
        return 0;
      }
      uint32_t next = MergeNodes(ctx, a, na.next, b, nb.next);
      ctx->out[my_idx].next = next;
      break;
    }
    case ApNode::Kind::kGuard: {
      if (!(na.guard_arg == nb.guard_arg)) {
        ctx->failed = true;
        return 0;
      }
      std::vector<std::pair<U256, uint32_t>> branches;
      for (const auto& [va, ta] : na.branches) {
        const uint32_t* tb = nullptr;
        for (const auto& [vb, t] : nb.branches) {
          if (vb == va) {
            tb = &t;
            break;
          }
        }
        uint32_t target = (tb != nullptr) ? MergeNodes(ctx, a, ta, b, *tb)
                                          : CopyChainInto(&ctx->out, a, ta, &ctx->copy_a);
        branches.emplace_back(va, target);
      }
      for (const auto& [vb, tb] : nb.branches) {
        bool in_a = false;
        for (const auto& [va, ta] : na.branches) {
          if (va == vb) {
            in_a = true;
            break;
          }
        }
        if (!in_a) {
          branches.emplace_back(vb, CopyChainInto(&ctx->out, b, tb, &ctx->copy_b));
        }
      }
      ctx->out[my_idx].branches = std::move(branches);
      break;
    }
    case ApNode::Kind::kShortcut: {
      if (na.inputs != nb.inputs) {
        ctx->failed = true;
        return 0;
      }
      std::vector<MemoEntry> entries = na.entries;
      for (const MemoEntry& eb : nb.entries) {
        auto match = std::find_if(entries.begin(), entries.end(), [&](const MemoEntry& e) {
          return e.in_values == eb.in_values;
        });
        if (match == entries.end()) {
          entries.push_back(eb);
        } else {
          // Same inputs => same deterministic outputs; keep the union of the
          // recorded (possibly differently-live) output registers.
          for (const auto& out : eb.outputs) {
            auto has = std::find_if(match->outputs.begin(), match->outputs.end(),
                                    [&](const auto& o) { return o.first == out.first; });
            if (has == match->outputs.end()) {
              match->outputs.push_back(out);
            }
          }
        }
      }
      uint32_t next = MergeNodes(ctx, a, na.next, b, nb.next);
      uint32_t skip = MergeNodes(ctx, a, na.skip_to, b, nb.skip_to);
      ctx->out[my_idx].entries = std::move(entries);
      ctx->out[my_idx].next = next;
      ctx->out[my_idx].skip_to = skip;
      break;
    }
    case ApNode::Kind::kDone: {
      if (!DoneEqual(na, nb)) {
        ctx->failed = true;
        return 0;
      }
      break;
    }
  }
  return my_idx;
}

}  // namespace

bool Ap::MergeWith(const Ap& other) {
  if (nodes_.empty()) {
    *this = other;
    return true;
  }
  if (other.nodes_.empty()) {
    return true;
  }
  MergeCtx ctx;
  uint32_t entry = MergeNodes(&ctx, *this, entry_, other, other.entry_);
  if (ctx.failed) {
    return false;
  }
  nodes_ = std::move(ctx.out);
  entry_ = entry;
  n_regs_ = std::max(n_regs_, other.n_regs_);
  size_t constraint_instrs = stats_.constraint_instrs;
  size_t fast_instrs = stats_.fast_path_instrs;
  RecountStats();
  stats_.constraint_instrs = constraint_instrs;  // first-path accounting
  stats_.fast_path_instrs = fast_instrs;
  return true;
}

// ---------------------------------------------------------------------------
// Execute
// ---------------------------------------------------------------------------

ApRunResult Ap::Execute(WorldState* state, const BlockContext& block) const {
  ApRunResult run;
  if (nodes_.empty()) {
    return run;
  }
  std::vector<U256> regs(n_regs_);
  auto resolve = [&](const Operand& o) -> const U256& {
    return o.is_const ? o.value : regs[o.reg];
  };
  bool all_shortcuts_hit = true;
  std::vector<LogEntry> logs;
  uint32_t idx = entry_;
  std::vector<U256> arg_values;
  while (true) {
    const ApNode& node = nodes_[idx];
    switch (node.kind) {
      case ApNode::Kind::kInstr: {
        const SInstr& instr = node.instr;
        arg_values.clear();
        for (const Operand& a : instr.args) {
          arg_values.push_back(resolve(a));
        }
        if (IsPureCompute(instr.op)) {
          regs[instr.dest] = EvalPure(instr.op, arg_values);
        } else if (IsContextRead(instr.op)) {
          regs[instr.dest] = EvalRead(instr.op, arg_values, state, block);
        } else {
          // Effect: all guards have already passed (rollback-free layout).
          switch (instr.op) {
            case SOp::kSstore:
              state->SetStorage(Address::FromU256(arg_values[0]), arg_values[1],
                                arg_values[2]);
              break;
            case SOp::kTransfer: {
              bool ok = state->SubBalance(Address::FromU256(arg_values[0]), arg_values[2]);
              assert(ok && "transfer guarded by constraint set");
              (void)ok;
              state->AddBalance(Address::FromU256(arg_values[1]), arg_values[2]);
              break;
            }
            case SOp::kLog: {
              LogEntry entry;
              entry.address = Address::FromU256(arg_values[0]);
              for (int t = 0; t < node.instr.n_topics; ++t) {
                entry.topics.push_back(arg_values[1 + t]);
              }
              for (size_t w = 1 + node.instr.n_topics; w < arg_values.size(); ++w) {
                auto be = arg_values[w].ToBigEndian();
                entry.data.insert(entry.data.end(), be.begin(), be.end());
              }
              logs.push_back(std::move(entry));
              break;
            }
            default:
              assert(false && "unknown effect");
          }
        }
        ++run.instrs_executed;
        idx = node.next;
        break;
      }
      case ApNode::Kind::kGuard: {
        const U256& value = resolve(node.guard_arg);
        uint32_t next = UINT32_MAX;
        for (const auto& [expected, target] : node.branches) {
          if (expected == value) {
            next = target;
            break;
          }
        }
        if (next == UINT32_MAX) {
          run.satisfied = false;  // constraint violation; nothing to roll back
          return run;
        }
        idx = next;
        break;
      }
      case ApNode::Kind::kShortcut: {
        const MemoEntry* hit = nullptr;
        for (const MemoEntry& entry : node.entries) {
          bool match = true;
          for (size_t k = 0; k < node.inputs.size(); ++k) {
            if (!(regs[node.inputs[k]] == entry.in_values[k])) {
              match = false;
              break;
            }
          }
          if (match) {
            hit = &entry;
            break;
          }
        }
        if (hit != nullptr) {
          for (const auto& [reg, value] : hit->outputs) {
            regs[reg] = value;
          }
          run.instrs_skipped += node.skip_count;
          idx = node.skip_to;
        } else {
          all_shortcuts_hit = false;
          idx = node.next;
        }
        break;
      }
      case ApNode::Kind::kDone: {
        run.satisfied = true;
        run.perfect = all_shortcuts_hit;
        run.result.status = node.status;
        run.result.gas_used = node.gas_used;
        for (const Operand& w : node.return_words) {
          auto be = resolve(w).ToBigEndian();
          run.result.return_data.insert(run.result.return_data.end(), be.begin(), be.end());
        }
        if (node.status == ExecStatus::kSuccess) {
          run.result.logs = std::move(logs);
        }
        return run;
      }
    }
  }
}

std::string Ap::Render() const {
  std::ostringstream out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const ApNode& node = nodes_[i];
    out << "n" << i << ": ";
    switch (node.kind) {
      case ApNode::Kind::kInstr:
        out << RenderInstr(node.instr) << " -> n" << node.next;
        break;
      case ApNode::Kind::kGuard: {
        out << "GUARD(";
        if (node.guard_arg.is_const) {
          out << node.guard_arg.value.ToHex();
        } else {
          out << "v" << node.guard_arg.reg;
        }
        out << ") {";
        for (const auto& [value, target] : node.branches) {
          out << " " << value.ToHex() << "->n" << target;
        }
        out << " else VIOLATION }";
        break;
      }
      case ApNode::Kind::kShortcut: {
        out << "SHORTCUT[";
        for (size_t k = 0; k < node.inputs.size(); ++k) {
          out << (k > 0 ? "," : "") << "v" << node.inputs[k];
        }
        out << "] " << node.entries.size() << " memo -> skip n" << node.skip_to
            << " else n" << node.next;
        break;
      }
      case ApNode::Kind::kDone:
        out << "DONE status=" << ExecStatusName(node.status) << " gas=" << node.gas_used;
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace frn
