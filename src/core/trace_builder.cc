#include "src/core/trace_builder.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sstream>

namespace frn {

namespace {

// Maps an EVM arithmetic/comparison/bitwise opcode to its S-EVM compute.
std::optional<SOp> ComputeOpFor(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return SOp::kAdd;
    case Opcode::kMul: return SOp::kMul;
    case Opcode::kSub: return SOp::kSub;
    case Opcode::kDiv: return SOp::kDiv;
    case Opcode::kSdiv: return SOp::kSdiv;
    case Opcode::kMod: return SOp::kMod;
    case Opcode::kSmod: return SOp::kSmod;
    case Opcode::kAddmod: return SOp::kAddMod;
    case Opcode::kMulmod: return SOp::kMulMod;
    case Opcode::kExp: return SOp::kExp;
    case Opcode::kSignextend: return SOp::kSignExtend;
    case Opcode::kLt: return SOp::kLt;
    case Opcode::kGt: return SOp::kGt;
    case Opcode::kSlt: return SOp::kSlt;
    case Opcode::kSgt: return SOp::kSgt;
    case Opcode::kEq: return SOp::kEq;
    case Opcode::kIszero: return SOp::kIsZero;
    case Opcode::kAnd: return SOp::kAnd;
    case Opcode::kOr: return SOp::kOr;
    case Opcode::kXor: return SOp::kXor;
    case Opcode::kNot: return SOp::kNot;
    case Opcode::kByte: return SOp::kByte;
    case Opcode::kShl: return SOp::kShl;
    case Opcode::kShr: return SOp::kShr;
    case Opcode::kSar: return SOp::kSar;
    default: return std::nullopt;
  }
}

std::string ValueNumberKey(SOp op, const std::vector<Operand>& args) {
  std::string key;
  key.push_back(static_cast<char>(op));
  for (const Operand& a : args) {
    if (a.is_const) {
      key.push_back('c');
      auto be = a.value.ToBigEndian();
      key.append(reinterpret_cast<const char*>(be.data()), be.size());
    } else {
      key.push_back('r');
      key.append(reinterpret_cast<const char*>(&a.reg), sizeof a.reg);
    }
  }
  return key;
}

}  // namespace

TraceBuilder::TraceBuilder(const Transaction& tx, WorldState* state) : tx_(tx), state_(state) {
  sender_gas_prepaid_ = U256(tx.gas_limit) * tx.gas_price;
  if (tx.to.IsZero()) {
    // Contract deployment installs code, which the AP effect set does not
    // model; creations always take the fallback path.
    Bail("contract creation transaction");
  }

  Frame top;
  top.self = tx.to;
  top.caller_addr = tx.sender;
  top.call_value = Operand::Const(tx.value);
  top.calldata_is_tx = true;
  top.calldata_size = tx.data.size();
  frames_.push_back(std::move(top));
  stacks_.emplace_back();

  // The up-front transfers the wrapper performs: gas purchase (compensated via
  // sender_gas_prepaid_) and the tx-level value transfer, which is a real
  // effect that must be committed on success.
  if (!tx.value.IsZero()) {
    pending_.transfers.push_back({tx.sender, tx.to, Operand::Const(tx.value)});
  }

  read_set_.accounts.push_back(tx.sender);
  read_set_.accounts.push_back(tx.to);
}

void TraceBuilder::Bail(const std::string& reason) {
  if (failed_reason_.empty()) {
    failed_reason_ = reason;
  }
}

RegId TraceBuilder::NewReg(const U256& traced_value) {
  traced_values_.push_back(traced_value);
  return static_cast<RegId>(traced_values_.size() - 1);
}

Operand TraceBuilder::EmitCompute(SOp op, std::vector<Operand> args, bool is_decomposition,
                                  bool for_constraint) {
  bool all_const = true;
  for (const Operand& a : args) {
    if (!a.is_const) {
      all_const = false;
      break;
    }
  }
  if (all_const) {
    std::vector<U256> values;
    values.reserve(args.size());
    for (const Operand& a : args) {
      values.push_back(a.value);
    }
    ++stats_.constant_folded;
    return Operand::Const(EvalPure(op, values));
  }
  std::string key = ValueNumberKey(op, args);
  auto it = value_numbers_.find(key);
  if (it != value_numbers_.end()) {
    ++stats_.cse_eliminated;
    return it->second;
  }
  std::vector<U256> traced_args;
  traced_args.reserve(args.size());
  for (const Operand& a : args) {
    traced_args.push_back(TracedValue(a));
  }
  SInstr instr;
  instr.op = op;
  instr.dest = NewReg(EvalPure(op, traced_args));
  instr.args = std::move(args);
  Operand result = Operand::Reg(instr.dest);
  instrs_.push_back(std::move(instr));
  value_numbers_.emplace(std::move(key), result);
  if (is_decomposition) {
    ++stats_.decomposition_added;
  }
  if (for_constraint) {
    ++stats_.constraint_instrs_added;
  }
  return result;
}

Operand TraceBuilder::EmitRead(SOp op, std::vector<Operand> args, const U256& traced_value) {
  std::string key = ValueNumberKey(op, args);
  auto it = value_numbers_.find(key);
  if (it != value_numbers_.end()) {
    ++stats_.cse_eliminated;
    return it->second;
  }
  SInstr instr;
  instr.op = op;
  instr.dest = NewReg(traced_value);
  instr.args = std::move(args);
  Operand result = Operand::Reg(instr.dest);
  instrs_.push_back(std::move(instr));
  value_numbers_.emplace(std::move(key), result);
  return result;
}

void TraceBuilder::EmitGuard(const Operand& checked, const U256& expected) {
  if (checked.is_const) {
    // A constant can never diverge; the constraint is statically satisfied.
    assert(checked.value == expected);
    return;
  }
  SInstr instr;
  instr.op = SOp::kGuard;
  instr.args = {checked};
  instr.expected = expected;
  instrs_.push_back(std::move(instr));
  ++stats_.guards_inserted;
}

U256 TraceBuilder::PinToTrace(const Operand& o) {
  if (o.is_const) {
    return o.value;
  }
  U256 traced = traced_values_[o.reg];
  EmitGuard(o, traced);
  return traced;
}

// ---------------------------------------------------------------------------
// Memory model
// ---------------------------------------------------------------------------

void TraceBuilder::WriteSegment(MemMap* mem, uint64_t start, uint64_t len, const Operand& src,
                                uint32_t src_off) {
  if (len == 0) {
    return;
  }
  uint64_t end = start + len;
  // Trim or split any overlapping segments.
  auto it = mem->lower_bound(start);
  if (it != mem->begin()) {
    auto prev = std::prev(it);
    uint64_t prev_end = prev->first + prev->second.len;
    if (prev_end > start) {
      MemSegment left = prev->second;
      MemSegment right = prev->second;
      uint64_t prev_start = prev->first;
      mem->erase(prev);
      if (prev_start < start) {
        left.len = start - prev_start;
        (*mem)[prev_start] = left;
      }
      if (prev_end > end) {
        right.src_off += static_cast<uint32_t>(end - prev_start);
        right.len = prev_end - end;
        (*mem)[end] = right;
      }
      it = mem->lower_bound(start);
    }
  }
  while (it != mem->end() && it->first < end) {
    uint64_t seg_start = it->first;
    uint64_t seg_end = seg_start + it->second.len;
    MemSegment tail = it->second;
    it = mem->erase(it);
    if (seg_end > end) {
      tail.src_off += static_cast<uint32_t>(end - seg_start);
      tail.len = seg_end - end;
      (*mem)[end] = tail;
      break;
    }
  }
  (*mem)[start] = MemSegment{len, src, src_off};
}

void TraceBuilder::WriteConstBytes(MemMap* mem, uint64_t start, const Bytes& bytes) {
  // Chunk into 32-byte const words (final partial word left-aligned).
  for (size_t i = 0; i < bytes.size(); i += 32) {
    uint8_t word[32] = {0};
    size_t n = std::min<size_t>(32, bytes.size() - i);
    std::memcpy(word, bytes.data() + i, n);
    WriteSegment(mem, start + i, n, Operand::Const(U256::FromBigEndian(word, 32)), 0);
  }
}

Operand TraceBuilder::ReadWord(const MemMap& mem, uint64_t off, uint64_t limit) {
  // Gather the contributions of each backing segment to the 32 bytes at
  // [off, off+32); gaps and bytes beyond `limit` read as zero.
  struct Piece {
    uint32_t at;       // position in the word (0 = most significant byte)
    uint32_t len;
    Operand src;
    uint32_t src_off;
  };
  std::vector<Piece> pieces;
  uint64_t end = off + 32;
  if (limit != UINT64_MAX) {
    end = std::min(end, std::max(off, limit));
  }
  auto it = mem.upper_bound(off);
  if (it != mem.begin()) {
    --it;
  }
  for (; it != mem.end() && it->first < end; ++it) {
    uint64_t seg_start = it->first;
    uint64_t seg_end = seg_start + it->second.len;
    if (seg_end <= off) {
      continue;
    }
    uint64_t lo = std::max(off, seg_start);
    uint64_t hi = std::min(end, seg_end);
    if (lo >= hi) {
      continue;
    }
    pieces.push_back(Piece{static_cast<uint32_t>(lo - off), static_cast<uint32_t>(hi - lo),
                           it->second.src,
                           it->second.src_off + static_cast<uint32_t>(lo - seg_start)});
  }
  if (pieces.empty()) {
    return Operand::Const(U256());
  }
  // Fast path: one segment covering the whole word from byte 0.
  if (pieces.size() == 1 && pieces[0].at == 0 && pieces[0].len == 32 &&
      pieces[0].src_off == 0) {
    return pieces[0].src;
  }
  // General composition: OR together the shifted extraction of every piece.
  U256 const_acc;
  Operand reg_acc = Operand::Const(U256());
  bool have_reg = false;
  for (const Piece& p : pieces) {
    if (p.src.is_const) {
      // Extract bytes [src_off, src_off+len) and place at position `at`.
      U256 x = p.src.value;
      x = x << (8u * p.src_off);
      x = x >> (8u * (32 - p.len));
      x = x << (8u * (32 - p.at - p.len));
      const_acc = const_acc | x;
      continue;
    }
    Operand x = p.src;
    if (p.src_off != 0) {
      x = EmitCompute(SOp::kShl, {Operand::Const(U256(8u * p.src_off)), x}, true);
    }
    if (p.len != 32) {
      x = EmitCompute(SOp::kShr, {Operand::Const(U256(8u * (32 - p.len))), x}, true);
    }
    if (32 - p.at - p.len != 0) {
      x = EmitCompute(SOp::kShl, {Operand::Const(U256(8u * (32 - p.at - p.len))), x}, true);
    }
    if (!have_reg) {
      reg_acc = x;
      have_reg = true;
    } else {
      reg_acc = EmitCompute(SOp::kOr, {reg_acc, x}, true);
    }
  }
  if (!have_reg) {
    return Operand::Const(const_acc);
  }
  if (const_acc.IsZero()) {
    return reg_acc;
  }
  return EmitCompute(SOp::kOr, {Operand::Const(const_acc), reg_acc}, true);
}

bool TraceBuilder::ReadWords(const MemMap& mem, uint64_t off, uint64_t len, uint64_t limit,
                             std::vector<Operand>* out) {
  if (len % 32 != 0) {
    Bail("non-word-aligned memory range read");
    return false;
  }
  for (uint64_t i = 0; i < len; i += 32) {
    out->push_back(ReadWord(mem, off + i, limit));
  }
  return true;
}

void TraceBuilder::CopyRange(const MemMap& src, uint64_t src_limit, uint64_t src_off,
                             MemMap* dst, uint64_t dst_off, uint64_t len) {
  if (len == 0) {
    return;
  }
  // Zero-fill first (memory gaps read as zero and must override stale bytes).
  WriteSegment(dst, dst_off, len, Operand::Const(U256()), 0);
  uint64_t end = src_off + len;
  if (src_limit != UINT64_MAX) {
    end = std::min(end, std::max(src_off, src_limit));
  }
  auto it = src.upper_bound(src_off);
  if (it != src.begin()) {
    --it;
  }
  for (; it != src.end() && it->first < end; ++it) {
    uint64_t seg_start = it->first;
    uint64_t seg_end = seg_start + it->second.len;
    if (seg_end <= src_off) {
      continue;
    }
    uint64_t lo = std::max(src_off, seg_start);
    uint64_t hi = std::min(end, seg_end);
    if (lo >= hi) {
      continue;
    }
    WriteSegment(dst, dst_off + (lo - src_off), hi - lo, it->second.src,
                 it->second.src_off + static_cast<uint32_t>(lo - seg_start));
  }
}

// ---------------------------------------------------------------------------
// State model
// ---------------------------------------------------------------------------

Operand TraceBuilder::LoadStorage(const Address& addr, const U256& key,
                                  const U256& traced_value) {
  auto loc = std::make_pair(addr, key);
  if (auto it = pending_.storage_writes.find(loc); it != pending_.storage_writes.end()) {
    ++stats_.state_eliminated;
    return it->second;
  }
  if (auto it = storage_reads_.find(loc); it != storage_reads_.end()) {
    ++stats_.state_eliminated;
    return it->second;
  }
  Operand value = EmitRead(
      SOp::kSload, {Operand::Const(addr.ToU256()), Operand::Const(key)}, traced_value);
  storage_reads_.emplace(loc, value);
  read_set_.storage_keys.emplace_back(addr, key);
  return value;
}

void TraceBuilder::StoreStorage(const Address& addr, const U256& key, const Operand& value) {
  auto loc = std::make_pair(addr, key);
  ++pending_.sstore_count;
  auto [it, inserted] = pending_.storage_writes.insert_or_assign(loc, value);
  (void)it;
  if (inserted) {
    pending_.storage_order.push_back(loc);
  }
}

Operand TraceBuilder::ComposeBalance(const Address& addr, const U256& traced_current) {
  // traced(base) = current + outflows - inflows applied so far.
  U256 base_traced = traced_current;
  if (addr == tx_.sender) {
    base_traced = base_traced + sender_gas_prepaid_;
  }
  for (const auto& t : pending_.transfers) {
    if (t.from == addr) {
      base_traced = base_traced + TracedValue(t.amount);
    }
    if (t.to == addr) {
      base_traced = base_traced - TracedValue(t.amount);
    }
  }
  Operand base;
  if (auto it = balance_reads_.find(addr); it != balance_reads_.end()) {
    base = it->second;
  } else {
    base = EmitRead(SOp::kBalance, {Operand::Const(addr.ToU256())}, base_traced);
    balance_reads_.emplace(addr, base);
    read_set_.accounts.push_back(addr);
  }
  Operand composed = base;
  if (addr == tx_.sender) {
    composed =
        EmitCompute(SOp::kSub, {composed, Operand::Const(sender_gas_prepaid_)}, true);
  }
  for (const auto& t : pending_.transfers) {
    if (t.from == addr) {
      composed = EmitCompute(SOp::kSub, {composed, t.amount}, true);
    }
    if (t.to == addr) {
      composed = EmitCompute(SOp::kAdd, {composed, t.amount}, true);
    }
  }
  return composed;
}

// ---------------------------------------------------------------------------
// Step dispatch
// ---------------------------------------------------------------------------

void TraceBuilder::OnStep(const TraceStep& step) {
  if (!ok() || top_frame_done_) {
    return;
  }
  ++stats_.evm_trace_len;
  switch (step.phase) {
    case TracePhase::kExec:
      HandleExec(step);
      break;
    case TracePhase::kCallEnter:
      HandleCallEnter(step);
      break;
    case TracePhase::kCallExit:
      HandleCallExit(step);
      break;
  }
}

void TraceBuilder::HandleExec(const TraceStep& step) {
  Frame& frame = Top();
  std::vector<Operand>& stack = Stack();
  uint8_t opcode_byte = static_cast<uint8_t>(step.op);
  const OpcodeInfo& info = GetOpcodeInfo(opcode_byte);

  auto pop = [&]() {
    Operand o = stack.back();
    stack.pop_back();
    return o;
  };
  auto push_const = [&](const U256& v) { stack.push_back(Operand::Const(v)); };

  // ---- Stack shuffling: eliminated outright ----
  if (IsPush(opcode_byte)) {
    ++stats_.stack_eliminated;
    push_const(step.outputs[0]);
    return;
  }
  if (IsDup(opcode_byte)) {
    ++stats_.stack_eliminated;
    stack.push_back(stack[stack.size() - static_cast<size_t>(DupIndex(opcode_byte))]);
    return;
  }
  if (IsSwap(opcode_byte)) {
    ++stats_.stack_eliminated;
    std::swap(stack[stack.size() - 1],
              stack[stack.size() - 1 - static_cast<size_t>(SwapIndex(opcode_byte))]);
    return;
  }
  if (step.op == Opcode::kPop) {
    ++stats_.stack_eliminated;
    pop();
    return;
  }

  // ---- Pure computes ----
  if (auto sop = ComputeOpFor(step.op)) {
    std::vector<Operand> args;
    for (size_t i = 0; i < step.inputs.size(); ++i) {
      args.push_back(pop());
    }
    stack.push_back(EmitCompute(*sop, std::move(args), false));
    return;
  }

  switch (step.op) {
    // ---- Environment: constants of the transaction/frame ----
    case Opcode::kAddress:
    case Opcode::kOrigin:
    case Opcode::kCaller:
    case Opcode::kGasprice:
    case Opcode::kCalldatasize:
    case Opcode::kCodesize:
    case Opcode::kChainid:
    case Opcode::kPc:
    case Opcode::kMsize:
    case Opcode::kGas:
    case Opcode::kReturndatasize:
      ++stats_.constant_folded;
      push_const(step.outputs[0]);
      return;
    case Opcode::kCallvalue:
      stack.push_back(frame.call_value);
      return;

    // ---- Block header: context reads ----
    case Opcode::kTimestamp:
      stack.push_back(EmitRead(SOp::kTimestamp, {}, step.outputs[0]));
      return;
    case Opcode::kNumber:
      stack.push_back(EmitRead(SOp::kNumber, {}, step.outputs[0]));
      return;
    case Opcode::kCoinbase:
      stack.push_back(EmitRead(SOp::kCoinbase, {}, step.outputs[0]));
      return;
    case Opcode::kDifficulty:
      stack.push_back(EmitRead(SOp::kDifficulty, {}, step.outputs[0]));
      return;
    case Opcode::kGaslimit:
      stack.push_back(EmitRead(SOp::kGasLimit, {}, step.outputs[0]));
      return;
    case Opcode::kBlockhash: {
      Operand n = pop();
      stack.push_back(EmitRead(SOp::kBlockHash, {n}, step.outputs[0]));
      return;
    }

    // ---- Balances ----
    case Opcode::kBalance: {
      Operand addr_op = pop();
      U256 addr_word = PinToTrace(addr_op);
      stack.push_back(ComposeBalance(Address::FromU256(addr_word), step.outputs[0]));
      return;
    }

    // ---- Code identity reads ----
    case Opcode::kExtcodehash: {
      Operand addr_op = pop();
      U256 addr_word = PinToTrace(addr_op);
      stack.push_back(EmitRead(SOp::kCodeHash, {Operand::Const(addr_word)}, step.outputs[0]));
      read_set_.accounts.push_back(Address::FromU256(addr_word));
      return;
    }
    case Opcode::kExtcodesize: {
      Operand addr_op = pop();
      U256 addr_word = PinToTrace(addr_op);
      stack.push_back(EmitRead(SOp::kCodeSize, {Operand::Const(addr_word)}, step.outputs[0]));
      read_set_.accounts.push_back(Address::FromU256(addr_word));
      return;
    }
    case Opcode::kExtcodecopy: {
      ++stats_.memory_eliminated;
      Operand addr_op = pop();
      Operand dst_op = pop();
      pop();  // source offset within the (now pinned) code
      Operand len_op = pop();
      U256 addr_word = PinToTrace(addr_op);
      U256 dst = PinToTrace(dst_op);
      PinToTrace(len_op);
      // Pin the code identity, then the copied bytes are trace constants.
      Address target = Address::FromU256(addr_word);
      Operand code_hash = EmitRead(SOp::kCodeHash, {Operand::Const(addr_word)},
                                   state_->GetCodeHash(target).ToU256());
      EmitGuard(code_hash, TracedValue(code_hash));
      read_set_.accounts.push_back(target);
      WriteConstBytes(&frame.memory, dst.AsUint64(), step.aux);
      return;
    }
    case Opcode::kSelfbalance:
      stack.push_back(ComposeBalance(frame.self, step.outputs[0]));
      return;

    // ---- Calldata ----
    case Opcode::kCalldataload: {
      Operand off_op = pop();
      U256 off = PinToTrace(off_op);
      if (frame.calldata_is_tx) {
        ++stats_.constant_folded;
        push_const(step.outputs[0]);
        return;
      }
      if (!off.FitsUint64()) {
        push_const(U256());
        return;
      }
      stack.push_back(ReadWord(frame.calldata, off.AsUint64(), frame.calldata_size));
      return;
    }
    case Opcode::kCalldatacopy: {
      ++stats_.memory_eliminated;
      Operand dst_op = pop();
      Operand src_op = pop();
      Operand len_op = pop();
      U256 dst = PinToTrace(dst_op);
      U256 src = PinToTrace(src_op);
      U256 len = PinToTrace(len_op);
      if (len.IsZero()) {
        return;
      }
      if (frame.calldata_is_tx) {
        WriteConstBytes(&frame.memory, dst.AsUint64(), step.aux);
      } else {
        CopyRange(frame.calldata, frame.calldata_size, src.AsUint64(), &frame.memory,
                  dst.AsUint64(), len.AsUint64());
      }
      return;
    }
    case Opcode::kCodecopy: {
      ++stats_.memory_eliminated;
      Operand dst_op = pop();
      pop();  // source offset: code is constant, aux carries the bytes
      Operand len_op = pop();
      U256 dst = PinToTrace(dst_op);
      PinToTrace(len_op);
      WriteConstBytes(&frame.memory, dst.AsUint64(), step.aux);
      return;
    }
    case Opcode::kReturndatacopy: {
      ++stats_.memory_eliminated;
      Operand dst_op = pop();
      Operand src_op = pop();
      Operand len_op = pop();
      U256 dst = PinToTrace(dst_op);
      U256 src = PinToTrace(src_op);
      U256 len = PinToTrace(len_op);
      CopyRange(frame.last_return, frame.last_return_len, src.AsUint64(), &frame.memory,
                dst.AsUint64(), len.AsUint64());
      return;
    }

    // ---- Memory ----
    case Opcode::kMload: {
      ++stats_.memory_eliminated;
      Operand off_op = pop();
      U256 off = PinToTrace(off_op);
      stack.push_back(ReadWord(frame.memory, off.AsUint64(), UINT64_MAX));
      return;
    }
    case Opcode::kMstore: {
      ++stats_.memory_eliminated;
      Operand off_op = pop();
      Operand val = pop();
      U256 off = PinToTrace(off_op);
      WriteSegment(&frame.memory, off.AsUint64(), 32, val, 0);
      return;
    }
    case Opcode::kMstore8: {
      ++stats_.memory_eliminated;
      Operand off_op = pop();
      Operand val = pop();
      U256 off = PinToTrace(off_op);
      WriteSegment(&frame.memory, off.AsUint64(), 1, val, 31);
      return;
    }

    // ---- SHA3 ----
    case Opcode::kSha3: {
      Operand off_op = pop();
      Operand len_op = pop();
      U256 off = PinToTrace(off_op);
      U256 len = PinToTrace(len_op);
      std::vector<Operand> words;
      if (!ReadWords(frame.memory, off.AsUint64(), len.AsUint64(), UINT64_MAX, &words)) {
        return;
      }
      stack.push_back(EmitCompute(SOp::kKeccak, std::move(words), false));
      return;
    }

    // ---- Storage ----
    case Opcode::kSload: {
      Operand key_op = pop();
      U256 key = PinToTrace(key_op);
      stack.push_back(LoadStorage(frame.self, key, step.outputs[0]));
      return;
    }
    case Opcode::kSstore: {
      Operand key_op = pop();
      Operand val = pop();
      U256 key = PinToTrace(key_op);
      StoreStorage(frame.self, key, val);
      return;
    }

    // ---- Control flow: eliminated, with control constraints ----
    case Opcode::kJump: {
      ++stats_.control_eliminated;
      Operand target = pop();
      PinToTrace(target);
      return;
    }
    case Opcode::kJumpi: {
      ++stats_.control_eliminated;
      Operand target = pop();
      Operand cond = pop();
      PinToTrace(target);
      PinToTrace(cond);
      return;
    }
    case Opcode::kJumpdest:
      ++stats_.control_eliminated;
      return;
    case Opcode::kStop:
      ++stats_.control_eliminated;
      if (frames_.size() == 1) {
        top_frame_done_ = true;
      }
      return;

    // ---- Logging ----
    case Opcode::kLog0:
    case Opcode::kLog1:
    case Opcode::kLog2:
    case Opcode::kLog3:
    case Opcode::kLog4: {
      Operand off_op = pop();
      Operand len_op = pop();
      int topics = LogTopics(opcode_byte);
      PendingState::Log log;
      log.addr = frame.self;
      for (int i = 0; i < topics; ++i) {
        log.topics.push_back(pop());
      }
      U256 off = PinToTrace(off_op);
      U256 len = PinToTrace(len_op);
      log.data_len = len.AsUint64();
      if (!ReadWords(frame.memory, off.AsUint64(), len.AsUint64(), UINT64_MAX,
                     &log.data_words)) {
        return;
      }
      pending_.logs.push_back(std::move(log));
      return;
    }

    // ---- Frame termination ----
    case Opcode::kReturn:
    case Opcode::kRevert: {
      ++stats_.control_eliminated;
      Operand off_op = pop();
      Operand len_op = pop();
      U256 off = PinToTrace(off_op);
      U256 len = PinToTrace(len_op);
      if (frames_.size() == 1) {
        if (!len.IsZero() &&
            !ReadWords(frame.memory, off.AsUint64(), len.AsUint64(), UINT64_MAX,
                       &return_words_)) {
          return;
        }
        top_frame_done_ = true;
        return;
      }
      frame.return_len = len.AsUint64();
      if (!len.IsZero()) {
        CopyRange(frame.memory, UINT64_MAX, off.AsUint64(), &frame.return_view, 0,
                  len.AsUint64());
      }
      return;
    }

    default:
      Bail(std::string("unsupported opcode in trace: ") + std::string(info.name));
      return;
  }
}

void TraceBuilder::HandleCallEnter(const TraceStep& step) {
  ++stats_.control_eliminated;
  Frame& frame = Top();
  std::vector<Operand>& stack = Stack();
  if (step.op == Opcode::kCreate) {
    // The AP effect set does not model code installation.
    Bail("CREATE in trace");
    return;
  }
  bool is_delegate = (step.op == Opcode::kDelegatecall);
  bool has_value_arg = (step.op == Opcode::kCall);

  auto pop = [&]() {
    Operand o = stack.back();
    stack.pop_back();
    return o;
  };
  pop();  // gas: irrelevant under the deterministic schedule
  Operand to_op = pop();
  Operand value_op = has_value_arg ? pop() : Operand::Const(U256());
  Operand in_off_op = pop();
  Operand in_size_op = pop();
  Operand out_off_op = pop();
  Operand out_size_op = pop();

  // Control constraint: the (possibly computed) call target.
  U256 to_word = PinToTrace(to_op);
  Address to = Address::FromU256(to_word);
  U256 in_off = PinToTrace(in_off_op);
  U256 in_size = PinToTrace(in_size_op);
  U256 out_off = PinToTrace(out_off_op);
  U256 out_size = PinToTrace(out_size_op);

  // Code-identity constraint: the callee's code must be the code that was
  // speculated against (CREATE can change accounts' code between contexts).
  Operand code_hash = EmitRead(SOp::kCodeHash, {Operand::Const(to_word)},
                               state_->GetCodeHash(to).ToU256());
  EmitGuard(code_hash, TracedValue(code_hash));
  read_set_.accounts.push_back(to);

  // Snapshot pending effects: a failing sub-call rolls them back.
  snapshots_.push_back(pending_);

  // Value transfer with its balance-sufficiency constraint (CALL only;
  // DELEGATECALL inherits the value without moving balances).
  U256 traced_value = TracedValue(value_op);
  if (has_value_arg) {
    if (!value_op.is_const) {
      Operand iz = EmitCompute(SOp::kIsZero, {value_op}, false, true);
      EmitGuard(iz, traced_value.IsZero() ? U256(1) : U256());
    }
    if (!traced_value.IsZero()) {
      U256 traced_balance = state_->GetBalance(frame.self);
      Operand balance = ComposeBalance(frame.self, traced_balance);
      Operand lt = EmitCompute(SOp::kLt, {balance, value_op}, false, true);
      U256 traced_lt = (traced_balance < traced_value) ? U256(1) : U256();
      EmitGuard(lt, traced_lt);
      if (traced_lt.IsZero()) {
        pending_.transfers.push_back({frame.self, to, value_op});
      }
    }
  }

  Frame callee;
  if (is_delegate) {
    callee.self = frame.self;
    callee.caller_addr = frame.caller_addr;
    callee.call_value = frame.call_value;
  } else {
    callee.self = to;
    callee.caller_addr = frame.self;
    callee.call_value = value_op;
  }
  callee.calldata_size = in_size.AsUint64();
  callee.out_off = out_off.AsUint64();
  callee.out_size = out_size.AsUint64();
  CopyRange(frame.memory, UINT64_MAX, in_off.AsUint64(), &callee.calldata, 0,
            in_size.AsUint64());
  frames_.push_back(std::move(callee));
  stacks_.emplace_back();
}

void TraceBuilder::HandleCallExit(const TraceStep& step) {
  ++stats_.control_eliminated;
  if (frames_.size() < 2) {
    Bail("call exit without matching frame");
    return;
  }
  Frame callee = std::move(frames_.back());
  frames_.pop_back();
  stacks_.pop_back();
  Frame& caller = Top();

  U256 success = step.outputs[0];
  PendingState snapshot = std::move(snapshots_.back());
  snapshots_.pop_back();
  if (success.IsZero()) {
    pending_ = std::move(snapshot);  // discard the failed call's effects
  }

  // Write the callee's return data into the caller's output region.
  uint64_t n = std::min(callee.out_size, callee.return_len);
  if (n > 0) {
    CopyRange(callee.return_view, callee.return_len, 0, &caller.memory, callee.out_off, n);
  }
  caller.last_return = std::move(callee.return_view);
  caller.last_return_len = callee.return_len;
  Stack().push_back(Operand::Const(success));
}

// ---------------------------------------------------------------------------
// Finalization
// ---------------------------------------------------------------------------

bool TraceBuilder::Finalize(const ExecResult& result, LinearIr* out) {
  if (!ok()) {
    return false;
  }
  out->status = result.status;
  out->gas_used = result.gas_used;

  // Failed transactions commit nothing (fee bookkeeping is the wrapper's job).
  bool commit_effects = result.ok();
  if (commit_effects) {
    for (const auto& t : pending_.transfers) {
      SInstr instr;
      instr.op = SOp::kTransfer;
      instr.args = {Operand::Const(t.from.ToU256()), Operand::Const(t.to.ToU256()), t.amount};
      instrs_.push_back(std::move(instr));
    }
    for (const auto& loc : pending_.storage_order) {
      SInstr instr;
      instr.op = SOp::kSstore;
      instr.args = {Operand::Const(loc.first.ToU256()), Operand::Const(loc.second),
                    pending_.storage_writes.at(loc)};
      instrs_.push_back(std::move(instr));
    }
    stats_.state_eliminated += pending_.sstore_count - pending_.storage_order.size();
    for (const auto& log : pending_.logs) {
      SInstr instr;
      instr.op = SOp::kLog;
      instr.args.push_back(Operand::Const(log.addr.ToU256()));
      for (const Operand& t : log.topics) {
        instr.args.push_back(t);
      }
      for (const Operand& w : log.data_words) {
        instr.args.push_back(w);
      }
      instr.n_topics = static_cast<uint8_t>(log.topics.size());
      instrs_.push_back(std::move(instr));
    }
    out->return_words = return_words_;
  } else if (result.status == ExecStatus::kReverted) {
    out->return_words = return_words_;
  }

  out->instrs = std::move(instrs_);
  out->n_regs = static_cast<RegId>(traced_values_.size());
  out->traced_values = std::move(traced_values_);
  out->read_set = read_set_;
  out->stats = stats_;
  return true;
}

}  // namespace frn
