// The linear S-EVM program produced by translating one execution trace, plus
// the synthesis statistics that back Figure 15. A LinearIr is single-path:
// guards assert the CD-Equiv constraints of the trace it came from, effects
// carry the write set, and the tail metadata reproduces the transaction's
// externally visible result.
#ifndef SRC_CORE_LINEAR_IR_H_
#define SRC_CORE_LINEAR_IR_H_

#include <vector>

#include "src/core/sevm.h"

namespace frn {

// Storage and account locations a pre-execution touched; drives the
// prefetcher regardless of whether AP synthesis succeeded.
struct ReadSet {
  std::vector<Address> accounts;
  std::vector<std::pair<Address, U256>> storage_keys;
};

// Per-stage instruction accounting for the Figure 15 code-reduction chart.
// All counts are in instructions; percentages are computed by the bench.
struct SynthesisStats {
  size_t evm_trace_len = 0;          // instructions in the EVM trace
  size_t decomposition_added = 0;    // extra S-EVM instrs from complex decomposition
  size_t stack_eliminated = 0;       // PUSH/DUP/SWAP/POP
  size_t memory_eliminated = 0;      // MLOAD/MSTORE/MSTORE8/MSIZE
  size_t control_eliminated = 0;     // JUMP/JUMPI/JUMPDEST/PC/STOP/RETURN/REVERT/CALL
  size_t state_eliminated = 0;       // redundant SLOAD/SSTOREs promoted away
  size_t constant_folded = 0;        // computes folded at build time
  size_t cse_eliminated = 0;         // duplicate computes unified
  size_t dead_eliminated = 0;        // removed by dead-code elimination
  size_t guards_inserted = 0;        // control + data guard instructions
  size_t constraint_instrs_added = 0;  // non-guard instrs added purely for constraints
  size_t final_total = 0;            // instructions in the finished path
  size_t final_fast_path = 0;        // ... of which belong to the fast path
};

struct LinearIr {
  std::vector<SInstr> instrs;
  RegId n_regs = 0;

  // The trace-constant transaction outcome.
  ExecStatus status = ExecStatus::kSuccess;
  uint64_t gas_used = 0;
  // Return data as 32-byte word operands (empty => empty return data).
  std::vector<Operand> return_words;

  ReadSet read_set;
  SynthesisStats stats;

  // Traced concrete value of every register (used by memoization to record
  // the remembered inputs/outputs of each shortcut segment).
  std::vector<U256> traced_values;
};

}  // namespace frn

#endif  // SRC_CORE_LINEAR_IR_H_
