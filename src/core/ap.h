// The Accelerated Program (paper §4.3): a guarded, specialized, memoized
// program synthesized from one or more pre-execution traces.
//
//   - Guard nodes check the CD-Equiv constraint sets and case-branch across
//     the futures merged into the AP. An unmatched guard value is a
//     constraint violation, which aborts with nothing to roll back.
//   - Shortcut nodes implement memoization: if the registers feeding a
//     compute segment hold the same values seen during some pre-execution,
//     the segment is skipped and its remembered outputs are committed.
//   - Instruction nodes evaluate S-EVM computes/reads; effect instructions
//     (the write set) are always scheduled after the last guard, making AP
//     execution rollback-free.
//   - Done nodes carry the trace-constant transaction outcome.
//
// Merging two APs walks both graphs in lockstep: identical prefixes unify,
// guards with different asserted values become case branches, and shortcut
// memo entries accumulate. Executing a merged AP of N futures costs O(path),
// independent of N.
#ifndef SRC_CORE_AP_H_
#define SRC_CORE_AP_H_

#include <optional>
#include <vector>

#include "src/core/linear_ir.h"

namespace frn {

struct ApOptions {
  // Shortcut eligibility: a compute run qualifies when it has at most this
  // many external inputs ...
  size_t max_shortcut_inputs = 4;
  // ... and at least this many instructions (expensive instructions such as
  // KECCAK/EXP/DIV always qualify).
  size_t min_shortcut_len = 2;
  // Maximal compute runs are split into sub-runs of at most this many
  // external inputs — the paper's nested-shortcut refinement: a segment
  // depending on fewer read-set registers is more likely to be skippable.
  size_t max_subrun_inputs = 2;
  bool enable_shortcuts = true;
};

struct MemoEntry {
  std::vector<U256> in_values;
  std::vector<std::pair<RegId, U256>> outputs;
};

struct ApNode {
  enum class Kind : uint8_t { kInstr, kGuard, kShortcut, kDone };
  Kind kind = Kind::kDone;

  SInstr instr;  // kInstr

  // kGuard: value of `guard_arg` selects the branch; no match => violation.
  Operand guard_arg;
  std::vector<std::pair<U256, uint32_t>> branches;

  // kShortcut: if the `inputs` registers match a memo entry, commit its
  // outputs and jump to skip_to; otherwise fall through to `next`.
  std::vector<RegId> inputs;
  std::vector<MemoEntry> entries;
  uint32_t skip_to = 0;
  uint32_t skip_count = 0;  // instruction nodes bypassed when an entry hits

  uint32_t next = 0;  // kInstr/kShortcut fall-through

  // kDone: trace-constant outcome.
  ExecStatus status = ExecStatus::kSuccess;
  uint64_t gas_used = 0;
  std::vector<Operand> return_words;
};

// Outcome of running an AP on the critical path.
struct ApRunResult {
  bool satisfied = false;      // false => constraint violation, caller falls back
  bool perfect = false;        // every shortcut taken and every read matched memo
  ExecResult result;           // valid when satisfied
  size_t instrs_executed = 0;  // instruction nodes actually evaluated
  size_t instrs_skipped = 0;   // instruction nodes bypassed via shortcuts
};

// Execution statistics of one AP structure.
struct ApStats {
  size_t paths = 0;             // distinct fast paths merged in
  size_t nodes = 0;
  size_t guard_nodes = 0;
  size_t shortcut_nodes = 0;
  size_t instr_nodes = 0;
  size_t memo_entries = 0;
  size_t constraint_instrs = 0;  // instructions feeding guards (first path)
  size_t fast_path_instrs = 0;   // remaining instructions (first path)
};

class Ap {
 public:
  Ap() = default;

  // Builds a single-path AP from a finalized LinearIr: dead-code elimination,
  // rollback-free partitioning (constraint section before effects), then
  // shortcut synthesis. Updates ir.stats (dead_eliminated, final sizes).
  static Ap Build(LinearIr&& ir, const ApOptions& options = ApOptions());

  // Merges `other` into this AP. Returns false when the programs disagree
  // somewhere other than a guard (which cannot happen for traces of the same
  // transaction built by this pipeline, but is handled defensively).
  bool MergeWith(const Ap& other);

  // Runs the AP against the actual context. Applies effects to `state` only
  // along satisfied paths (all effects sit behind the last guard).
  ApRunResult Execute(WorldState* state, const BlockContext& block) const;

  const ApStats& stats() const { return stats_; }
  // Synthesis accounting of the (first) path, completed by Build's DCE and
  // partitioning passes (Figure 15).
  const SynthesisStats& synthesis_stats() const { return synthesis_stats_; }
  RegId n_regs() const { return n_regs_; }
  bool empty() const { return nodes_.empty(); }
  const std::vector<ApNode>& nodes() const { return nodes_; }

  // Debug rendering of the node graph.
  std::string Render() const;

 private:
  uint32_t MergeChain(const Ap& other, uint32_t my_idx, uint32_t other_idx,
                      std::vector<std::vector<int64_t>>* memo, bool* failed);
  uint32_t CopyChain(const Ap& other, uint32_t other_idx,
                     std::vector<int64_t>* copy_map);
  void RecountStats();

  std::vector<ApNode> nodes_;
  uint32_t entry_ = 0;
  RegId n_regs_ = 0;
  ApStats stats_;
  SynthesisStats synthesis_stats_;
};

}  // namespace frn

#endif  // SRC_CORE_AP_H_
