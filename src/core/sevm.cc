#include "src/core/sevm.h"

#include <cassert>
#include <sstream>

#include "src/crypto/keccak.h"
#include "src/evm/evm.h"

namespace frn {

const char* SOpName(SOp op) {
  switch (op) {
    case SOp::kAdd: return "ADD";
    case SOp::kMul: return "MUL";
    case SOp::kSub: return "SUB";
    case SOp::kDiv: return "DIV";
    case SOp::kSdiv: return "SDIV";
    case SOp::kMod: return "MOD";
    case SOp::kSmod: return "SMOD";
    case SOp::kAddMod: return "ADDMOD";
    case SOp::kMulMod: return "MULMOD";
    case SOp::kExp: return "EXP";
    case SOp::kSignExtend: return "SIGNEXTEND";
    case SOp::kLt: return "LT";
    case SOp::kGt: return "GT";
    case SOp::kSlt: return "SLT";
    case SOp::kSgt: return "SGT";
    case SOp::kEq: return "EQ";
    case SOp::kIsZero: return "ISZERO";
    case SOp::kAnd: return "AND";
    case SOp::kOr: return "OR";
    case SOp::kXor: return "XOR";
    case SOp::kNot: return "NOT";
    case SOp::kByte: return "BYTE";
    case SOp::kShl: return "SHL";
    case SOp::kShr: return "SHR";
    case SOp::kSar: return "SAR";
    case SOp::kKeccak: return "KECCAK";
    case SOp::kTimestamp: return "TIMESTAMP";
    case SOp::kNumber: return "NUMBER";
    case SOp::kCoinbase: return "COINBASE";
    case SOp::kDifficulty: return "DIFFICULTY";
    case SOp::kGasLimit: return "GASLIMIT";
    case SOp::kBlockHash: return "BLOCKHASH";
    case SOp::kBalance: return "BALANCE";
    case SOp::kCodeHash: return "CODEHASH";
    case SOp::kCodeSize: return "CODESIZE";
    case SOp::kSload: return "SLOAD";
    case SOp::kGuard: return "GUARD";
    case SOp::kSstore: return "SSTORE";
    case SOp::kLog: return "LOG";
    case SOp::kTransfer: return "TRANSFER";
  }
  return "?";
}

bool IsPureCompute(SOp op) {
  return static_cast<uint8_t>(op) <= static_cast<uint8_t>(SOp::kKeccak);
}

bool IsContextRead(SOp op) {
  return static_cast<uint8_t>(op) >= static_cast<uint8_t>(SOp::kTimestamp) &&
         static_cast<uint8_t>(op) <= static_cast<uint8_t>(SOp::kSload);
}

bool IsEffect(SOp op) {
  return op == SOp::kSstore || op == SOp::kLog || op == SOp::kTransfer;
}

U256 EvalPure(SOp op, const std::vector<U256>& args) {
  switch (op) {
    case SOp::kAdd: return args[0] + args[1];
    case SOp::kMul: return args[0] * args[1];
    case SOp::kSub: return args[0] - args[1];
    case SOp::kDiv: return args[0] / args[1];
    case SOp::kSdiv: return U256::Sdiv(args[0], args[1]);
    case SOp::kMod: return args[0] % args[1];
    case SOp::kSmod: return U256::Smod(args[0], args[1]);
    case SOp::kAddMod: return U256::AddMod(args[0], args[1], args[2]);
    case SOp::kMulMod: return U256::MulMod(args[0], args[1], args[2]);
    case SOp::kExp: return U256::Exp(args[0], args[1]);
    case SOp::kSignExtend: return U256::SignExtend(args[0], args[1]);
    case SOp::kLt: return args[0] < args[1] ? U256(1) : U256();
    case SOp::kGt: return args[0] > args[1] ? U256(1) : U256();
    case SOp::kSlt: return U256::Slt(args[0], args[1]) ? U256(1) : U256();
    case SOp::kSgt: return U256::Slt(args[1], args[0]) ? U256(1) : U256();
    case SOp::kEq: return args[0] == args[1] ? U256(1) : U256();
    case SOp::kIsZero: return args[0].IsZero() ? U256(1) : U256();
    case SOp::kAnd: return args[0] & args[1];
    case SOp::kOr: return args[0] | args[1];
    case SOp::kXor: return args[0] ^ args[1];
    case SOp::kNot: return ~args[0];
    case SOp::kByte: return U256::ByteAt(args[0], args[1]);
    case SOp::kShl: {
      uint64_t n = args[0].FitsUint64() ? args[0].AsUint64() : 256;
      return args[1] << static_cast<unsigned>(n < 256 ? n : 256);
    }
    case SOp::kShr: {
      uint64_t n = args[0].FitsUint64() ? args[0].AsUint64() : 256;
      return args[1] >> static_cast<unsigned>(n < 256 ? n : 256);
    }
    case SOp::kSar: return U256::Sar(args[0], args[1]);
    case SOp::kKeccak: {
      Bytes preimage;
      preimage.reserve(args.size() * 32);
      for (const U256& word : args) {
        auto be = word.ToBigEndian();
        preimage.insert(preimage.end(), be.begin(), be.end());
      }
      return Keccak256(preimage).ToU256();
    }
    default:
      assert(false && "EvalPure on non-compute");
      return U256();
  }
}

U256 EvalRead(SOp op, const std::vector<U256>& args, WorldState* state, const BlockContext& block) {
  switch (op) {
    case SOp::kTimestamp: return U256(block.timestamp);
    case SOp::kNumber: return U256(block.number);
    case SOp::kCoinbase: return block.coinbase.ToU256();
    case SOp::kDifficulty: return block.difficulty;
    case SOp::kGasLimit: return U256(block.gas_limit);
    case SOp::kBlockHash: {
      const U256& n = args[0];
      if (n.FitsUint64() && n.AsUint64() < block.number && n.AsUint64() + 256 >= block.number) {
        return Evm::BlockHash(block.chain_seed, n.AsUint64()).ToU256();
      }
      return U256();
    }
    case SOp::kBalance: return state->GetBalance(Address::FromU256(args[0]));
    case SOp::kCodeHash: return state->GetCodeHash(Address::FromU256(args[0])).ToU256();
    case SOp::kCodeSize:
      return U256(static_cast<uint64_t>(state->GetCode(Address::FromU256(args[0])).size()));
    case SOp::kSload: return state->GetStorage(Address::FromU256(args[0]), args[1]);
    default:
      assert(false && "EvalRead on non-read");
      return U256();
  }
}

std::string RenderInstr(const SInstr& instr) {
  std::ostringstream out;
  if (instr.dest != kNoReg) {
    out << "v" << instr.dest << " = ";
  }
  out << SOpName(instr.op) << "(";
  for (size_t i = 0; i < instr.args.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    const Operand& a = instr.args[i];
    if (a.is_const) {
      out << a.value.ToHex();
    } else {
      out << "v" << a.reg;
    }
  }
  out << ")";
  if (instr.op == SOp::kGuard) {
    out << " expect " << instr.expected.ToHex();
  }
  return out.str();
}

}  // namespace frn
