// Translates an instrumented EVM execution into linear S-EVM form, performing
// in one pass everything Figure 6 shows on the left side of AP synthesis:
//   - complex instruction decomposition (SHA3 preimage gathering, balance
//     compensation arithmetic, memory word composition),
//   - stack-to-register translation in SSA form (the shadow stack holds
//     operands; PUSH/DUP/SWAP/POP never materialize),
//   - register promotion (memory accesses become register forwarding; only
//     the first read of and last write to each context variable survive),
//   - control-flow elimination with control-constraint GUARDs at every
//     divergence point (JUMPI conditions, variable JUMP/CALL targets),
//   - data-constraint GUARDs wherever the translation relied on a concrete
//     trace value (variable memory offsets, variable storage keys),
//   - constant folding and common-subexpression elimination (value numbering).
//
// The builder is attached to the EVM as a Tracer during speculative
// pre-execution; Finalize() then yields the single-path LinearIr.
#ifndef SRC_CORE_TRACE_BUILDER_H_
#define SRC_CORE_TRACE_BUILDER_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/linear_ir.h"
#include "src/evm/tracer.h"

namespace frn {

class TraceBuilder : public Tracer {
 public:
  // `state` is the speculation-time world state the traced execution runs on; it
  // is only consulted for balance baselines at CALL value checks.
  TraceBuilder(const Transaction& tx, WorldState* state);

  void OnStep(const TraceStep& step) override;

  // True while no unsupported pattern has been hit.
  bool ok() const { return failed_reason_.empty(); }
  const std::string& failed_reason() const { return failed_reason_; }

  // Completes translation using the traced execution's result. Returns false
  // (with ok()==false) when the trace used a pattern the specializer does not
  // support; the read set is still valid for prefetching in that case.
  bool Finalize(const ExecResult& result, LinearIr* out);

  const ReadSet& read_set() const { return read_set_; }

 private:
  // A contiguous run of bytes in a frame's memory, backed by bytes
  // [src_off, src_off+len) of the 32-byte value `src`.
  struct MemSegment {
    uint64_t len = 0;
    Operand src;
    uint32_t src_off = 0;
  };
  using MemMap = std::map<uint64_t, MemSegment>;  // keyed by start offset

  struct Frame {
    Address self;
    Address caller_addr;
    Operand call_value;
    MemMap memory;
    MemMap calldata;          // resolved view of the caller-provided input
    uint64_t calldata_size = 0;
    bool calldata_is_tx = false;  // depth 0: read words straight from tx.data
    // Return data produced by this frame (set at its RETURN/REVERT).
    MemMap return_view;
    uint64_t return_len = 0;
    // Output region in the *caller's* memory (captured at CallEnter).
    uint64_t out_off = 0;
    uint64_t out_size = 0;
    // Last completed sub-call's return data (for RETURNDATASIZE/COPY).
    MemMap last_return;
    uint64_t last_return_len = 0;
  };

  struct StorageKeyHash {
    size_t operator()(const std::pair<Address, U256>& k) const {
      return AddressHasher{}(k.first) * 1000003u ^ k.second.HashValue();
    }
  };

  struct PendingState {
    // Last pending write per storage location, plus insertion order.
    std::unordered_map<std::pair<Address, U256>, Operand, StorageKeyHash> storage_writes;
    std::vector<std::pair<Address, U256>> storage_order;
    size_t sstore_count = 0;  // total SSTOREs folded into the map
    // Ordered balance movements (kTransfer effects).
    struct Transfer {
      Address from;
      Address to;
      Operand amount;
    };
    std::vector<Transfer> transfers;
    // Pending logs.
    struct Log {
      Address addr;
      std::vector<Operand> topics;
      std::vector<Operand> data_words;
      uint64_t data_len = 0;
    };
    std::vector<Log> logs;
  };

  // ---- Emission helpers ----
  RegId NewReg(const U256& traced_value);
  Operand EmitCompute(SOp op, std::vector<Operand> args, bool is_decomposition,
                      bool for_constraint = false);
  Operand EmitRead(SOp op, std::vector<Operand> args, const U256& traced_value);
  void EmitGuard(const Operand& checked, const U256& expected);
  U256 TracedValue(const Operand& o) const {
    return o.is_const ? o.value : traced_values_[o.reg];
  }
  // Pins a non-const operand to its traced value with a data guard and
  // returns the concrete value; consts pass through.
  U256 PinToTrace(const Operand& o);

  // ---- Memory model ----
  static void WriteSegment(MemMap* mem, uint64_t start, uint64_t len, const Operand& src,
                           uint32_t src_off);
  void WriteConstBytes(MemMap* mem, uint64_t start, const Bytes& bytes);
  // Reads 32 bytes at `off` from `mem` (bytes beyond `limit` are zero;
  // limit == UINT64_MAX means unlimited). May emit compose instructions.
  Operand ReadWord(const MemMap& mem, uint64_t off, uint64_t limit);
  // Reads a size%32==0 range as word operands; bails on unsupported shapes.
  bool ReadWords(const MemMap& mem, uint64_t off, uint64_t len, uint64_t limit,
                 std::vector<Operand>* out);
  // Copies [src_off, src_off+len) of `src` into `dst` at dst_off, zero-filling
  // bytes beyond src_limit.
  void CopyRange(const MemMap& src, uint64_t src_limit, uint64_t src_off, MemMap* dst,
                 uint64_t dst_off, uint64_t len);

  // ---- State model ----
  Operand LoadStorage(const Address& addr, const U256& key, const U256& traced_value);
  void StoreStorage(const Address& addr, const U256& key, const Operand& value);
  // Balance of `addr` as seen mid-execution: committed read + compensation.
  Operand ComposeBalance(const Address& addr, const U256& traced_current);
  void Bail(const std::string& reason);

  // ---- Step handlers ----
  void HandleExec(const TraceStep& step);
  void HandleCallEnter(const TraceStep& step);
  void HandleCallExit(const TraceStep& step);

  Frame& Top() { return frames_.back(); }
  std::vector<Operand>& Stack() { return stacks_.back(); }

  Transaction tx_;
  WorldState* state_;

  std::vector<SInstr> instrs_;
  std::vector<U256> traced_values_;
  ReadSet read_set_;
  SynthesisStats stats_;
  std::string failed_reason_;

  std::vector<Frame> frames_;
  std::vector<std::vector<Operand>> stacks_;

  PendingState pending_;
  // Snapshots for sub-call rollback, pushed at CallEnter.
  std::vector<PendingState> snapshots_;

  // First committed read per location (register promotion).
  std::unordered_map<std::pair<Address, U256>, Operand, StorageKeyHash> storage_reads_;
  std::unordered_map<Address, Operand, AddressHasher> balance_reads_;
  // Gas purchased up-front by the wrapper; compensates sender balance reads.
  U256 sender_gas_prepaid_;

  // Value numbering for CSE over pure computes and context reads.
  std::unordered_map<std::string, Operand> value_numbers_;

  // Return data of the top-level frame.
  std::vector<Operand> return_words_;
  bool top_frame_done_ = false;
};

}  // namespace frn

#endif  // SRC_CORE_TRACE_BUILDER_H_
