// S-EVM: Forerunner's register-based intermediate representation (paper §4.3).
// Each instruction fulfils exactly one of three roles — read, write, or
// compute — over an unbounded register file. Stack, memory and control-flow
// instructions of the EVM have no S-EVM counterparts: the translator resolves
// them away, and the only control flow that remains is the restricted form
// reintroduced by GUARD instructions.
#ifndef SRC_CORE_SEVM_H_
#define SRC_CORE_SEVM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/evm/context.h"
#include "src/evm/world_state.h"

namespace frn {

using RegId = uint32_t;
inline constexpr RegId kNoReg = UINT32_MAX;

// An instruction argument: either a register or an inline constant.
struct Operand {
  static Operand Reg(RegId r) {
    Operand o;
    o.is_const = false;
    o.reg = r;
    return o;
  }
  static Operand Const(const U256& v) {
    Operand o;
    o.is_const = true;
    o.value = v;
    return o;
  }

  bool is_const = true;
  RegId reg = kNoReg;
  U256 value;

  bool operator==(const Operand& o) const {
    if (is_const != o.is_const) {
      return false;
    }
    return is_const ? value == o.value : reg == o.reg;
  }
};

enum class SOp : uint8_t {
  // ---- Pure computes (register -> register) ----
  kAdd,
  kMul,
  kSub,
  kDiv,
  kSdiv,
  kMod,
  kSmod,
  kAddMod,
  kMulMod,
  kExp,
  kSignExtend,
  kLt,
  kGt,
  kSlt,
  kSgt,
  kEq,
  kIsZero,
  kAnd,
  kOr,
  kXor,
  kNot,
  kByte,
  kShl,   // args: (shift, value) like the EVM opcode
  kShr,
  kSar,
  kKeccak,  // args: the preimage as consecutive 32-byte words

  // ---- Context reads ----
  kTimestamp,
  kNumber,
  kCoinbase,
  kDifficulty,
  kGasLimit,
  kBlockHash,  // args: (block number); applies the 256-block window rule
  kBalance,    // args: (address)
  kCodeHash,   // args: (address) — code-identity read, guards call targets
  kCodeSize,   // args: (address)
  kSload,      // args: (contract address, key)

  // ---- Constraint checking ----
  kGuard,  // args: (checked operand); `expected` holds the asserted value

  // ---- Effects (the write set; always scheduled after the last guard) ----
  kSstore,    // args: (contract address, key, value)
  kLog,       // args: (contract address, topic..., data word...); n_topics set
  kTransfer,  // args: (from, to, amount)
};

const char* SOpName(SOp op);
bool IsPureCompute(SOp op);
bool IsContextRead(SOp op);
bool IsEffect(SOp op);

struct SInstr {
  SOp op;
  RegId dest = kNoReg;
  std::vector<Operand> args;
  U256 expected;        // kGuard: the asserted value
  uint8_t n_topics = 0;  // kLog: how many leading args after the address are topics

  bool SameShape(const SInstr& o) const {
    return op == o.op && dest == o.dest && args == o.args && n_topics == o.n_topics;
  }
};

// Evaluates a pure compute given resolved argument values.
U256 EvalPure(SOp op, const std::vector<U256>& args);

// Evaluates a context read against live state (kTimestamp..kSload).
U256 EvalRead(SOp op, const std::vector<U256>& args, WorldState* state, const BlockContext& block);

// Human-readable rendering for debugging and the Figure 8-style listings.
std::string RenderInstr(const SInstr& instr);

}  // namespace frn

#endif  // SRC_CORE_SEVM_H_
