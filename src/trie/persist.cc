#include "src/trie/persist.h"

#include <atomic>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace frn {

namespace {

constexpr uint8_t kRecordBlob = 1;
constexpr uint8_t kRecordHead = 2;
constexpr size_t kRecordHeaderBytes = 1 + 4 + 8;  // type + payload_len + checksum
// Cap a single record's payload (a trie node or code blob plus its 32-byte
// key); anything larger in a header is corruption, not data.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;
constexpr size_t kSegmentTargetBytes = 4u << 20;  // rotate past ~4 MiB

// Failure injection for the torn-tail truncation path: tests run with enough
// privilege that a permission-denied resize cannot be provoked through the
// filesystem itself.
std::atomic<bool> g_fail_resize_for_test{false};

uint64_t Fnv1a64(const uint8_t* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

}  // namespace

void PersistLog::SetResizeFailureForTest(bool fail) {
  g_fail_resize_for_test.store(fail, std::memory_order_relaxed);
}

std::string PersistLog::SegmentPath(size_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "segment-%04zu.log", index);
  return dir_ + "/" + name;
}

std::unique_ptr<PersistLog> PersistLog::Open(const std::string& dir, std::string* error) {
  std::unique_ptr<PersistLog> log(new PersistLog());
  log->dir_ = dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create persist dir " + dir + ": " + ec.message();
    }
    return nullptr;
  }
  MutexLock lock(log->mutex_);
  if (!log->ReplayLocked(error)) {
    return nullptr;
  }
  return log;
}

bool PersistLog::ReplayLocked(std::string* error) {
  const std::string manifest_path = dir_ + "/MANIFEST";
  if (std::FILE* manifest = std::fopen(manifest_path.c_str(), "rb")) {
    unsigned version = 0;
    unsigned long long segments = 0;
    const int matched =
        std::fscanf(manifest, "FRNLOG %u\nsegments %llu\n", &version, &segments);
    std::fclose(manifest);
    if (matched != 2 || segments == 0) {
      if (error != nullptr) {
        *error = "unreadable manifest at " + manifest_path;
      }
      return false;
    }
    if (version != kVersion) {
      if (error != nullptr) {
        *error = "manifest version mismatch at " + manifest_path + ": found " +
                 std::to_string(version) + ", supported " + std::to_string(kVersion);
      }
      return false;
    }
    segments_ = static_cast<size_t>(segments);
  } else {
    // Fresh directory: one empty segment, manifest written below.
    segments_ = 1;
    WriteManifestLocked();
  }

  bool truncated = false;
  size_t last_good = 0;  // index of the last segment that replayed cleanly
  for (size_t seg = 0; seg < segments_ && !truncated; ++seg) {
    const std::string path = SegmentPath(seg);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      // A manifest-named segment that never hit the disk (crash between
      // manifest rewrite and first append): treat like an empty tail.
      truncated = seg + 1 < segments_;
      last_good = seg;
      break;
    }
    ++stats_.segments_replayed;
    size_t good_offset = 0;
    for (;;) {
      uint8_t header[kRecordHeaderBytes];
      const size_t got = std::fread(header, 1, sizeof(header), f);
      if (got == 0) {
        break;  // clean end of segment
      }
      bool ok = got == sizeof(header);
      uint32_t payload_len = 0;
      std::vector<uint8_t> payload;
      if (ok) {
        payload_len = ReadU32(header + 1);
        ok = (header[0] == kRecordBlob || header[0] == kRecordHead) &&
             payload_len <= kMaxPayloadBytes;
      }
      if (ok) {
        payload.resize(payload_len);
        ok = std::fread(payload.data(), 1, payload_len, f) == payload_len &&
             Fnv1a64(payload.data(), payload.size()) == ReadU64(header + 5);
      }
      if (ok && header[0] == kRecordBlob) {
        ok = payload.size() >= 32;
        if (ok) {
          std::array<uint8_t, 32> key{};
          std::memcpy(key.data(), payload.data(), 32);
          replay_.emplace_back(Hash(key), Bytes(payload.begin() + 32, payload.end()));
          ++stats_.blobs_replayed;
        }
      } else if (ok && header[0] == kRecordHead) {
        ok = payload.size() == 40;
        if (ok) {
          std::array<uint8_t, 32> root{};
          std::memcpy(root.data(), payload.data(), 32);
          head_root_ = Hash(root);
          head_height_ = ReadU64(payload.data() + 32);
          has_head_ = true;
          ++stats_.heads_replayed;
        }
      }
      if (!ok) {
        // Torn or corrupt tail: everything before this record is intact.
        // Drop the tail (and any later segments — they were written after
        // this point in append order) and resume from here.
        ++stats_.truncated_records;
        truncated = true;
        break;
      }
      good_offset += kRecordHeaderBytes + payload_len;
    }
    std::fclose(f);
    if (truncated) {
      // The corrupt tail record MUST be physically gone before the segment
      // reopens for append: appending after a record the next replay will
      // reject would wedge every future open at this spot. If the truncation
      // itself fails, refuse the open instead of wedging the log.
      std::error_code ec;
      if (g_fail_resize_for_test.load(std::memory_order_relaxed)) {
        ec = std::make_error_code(std::errc::permission_denied);
      } else {
        std::filesystem::resize_file(path, good_offset, ec);
      }
      if (ec) {
        if (error != nullptr) {
          *error = "cannot truncate torn tail of " + path + ": " + ec.message();
        }
        return false;
      }
      last_good = seg;
    } else {
      last_good = seg;
    }
  }

  if (truncated || last_good + 1 < segments_) {
    for (size_t seg = last_good + 1; seg < segments_; ++seg) {
      std::error_code ec;
      std::filesystem::remove(SegmentPath(seg), ec);
    }
    segments_ = last_good + 1;
    WriteManifestLocked();
  }

  const std::string tail_path = SegmentPath(segments_ - 1);
  segment_ = std::fopen(tail_path.c_str(), "ab");
  if (segment_ == nullptr) {
    if (error != nullptr) {
      *error = "cannot open segment for append: " + tail_path;
    }
    return false;
  }
  std::error_code ec;
  const auto size = std::filesystem::file_size(tail_path, ec);
  segment_bytes_ = ec ? 0 : static_cast<size_t>(size);
  return true;
}

PersistLog::~PersistLog() {
  MutexLock lock(mutex_);
  if (segment_ != nullptr) {
    std::fclose(segment_);
    segment_ = nullptr;
  }
}

std::vector<std::pair<Hash, Bytes>> PersistLog::TakeReplay() {
  MutexLock lock(mutex_);
  std::vector<std::pair<Hash, Bytes>> out;
  out.swap(replay_);
  return out;
}

void PersistLog::WriteManifestLocked() {
  // tmp + rename so a crash mid-rewrite leaves the old manifest intact.
  const std::string tmp_path = dir_ + "/MANIFEST.tmp";
  if (std::FILE* f = std::fopen(tmp_path.c_str(), "wb")) {
    std::fprintf(f, "FRNLOG %u\nsegments %zu\n", kVersion, segments_);
    std::fclose(f);
    std::error_code ec;
    std::filesystem::rename(tmp_path, dir_ + "/MANIFEST", ec);
  }
}

void PersistLog::AppendRecordLocked(uint8_t type, const std::vector<uint8_t>& payload) {
  if (segment_ == nullptr) {
    return;
  }
  std::vector<uint8_t> header;
  header.reserve(kRecordHeaderBytes);
  header.push_back(type);
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU64(&header, Fnv1a64(payload.data(), payload.size()));
  std::fwrite(header.data(), 1, header.size(), segment_);
  std::fwrite(payload.data(), 1, payload.size(), segment_);
  // Flush per record: a crash can then lose at most the torn tail record that
  // replay-on-open truncates away.
  std::fflush(segment_);
  segment_bytes_ += header.size() + payload.size();
  RotateIfNeededLocked();
}

void PersistLog::RotateIfNeededLocked() {
  if (segment_bytes_ < kSegmentTargetBytes) {
    return;
  }
  std::fclose(segment_);
  ++segments_;
  WriteManifestLocked();
  segment_ = std::fopen(SegmentPath(segments_ - 1).c_str(), "wb");
  segment_bytes_ = 0;
  ++stats_.rotations;
}

void PersistLog::AppendBlob(const Hash& key, const Bytes& value) {
  std::vector<uint8_t> payload;
  payload.reserve(32 + value.size());
  payload.insert(payload.end(), key.bytes().begin(), key.bytes().end());
  payload.insert(payload.end(), value.begin(), value.end());
  MutexLock lock(mutex_);
  AppendRecordLocked(kRecordBlob, payload);
  ++stats_.blobs_appended;
}

void PersistLog::AppendHead(const Hash& root, uint64_t height) {
  std::vector<uint8_t> payload;
  payload.reserve(40);
  payload.insert(payload.end(), root.bytes().begin(), root.bytes().end());
  PutU64(&payload, height);
  MutexLock lock(mutex_);
  AppendRecordLocked(kRecordHead, payload);
  ++stats_.heads_appended;
  has_head_ = true;
  head_root_ = root;
  head_height_ = height;
}

bool PersistLog::has_head() const {
  MutexLock lock(mutex_);
  return has_head_;
}

Hash PersistLog::head_root() const {
  MutexLock lock(mutex_);
  return head_root_;
}

uint64_t PersistLog::head_height() const {
  MutexLock lock(mutex_);
  return head_height_;
}

PersistLogStats PersistLog::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace frn
