#include "src/trie/kv_store.h"

namespace frn {

void SpinFor(std::chrono::nanoseconds duration) {
  auto end = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < end) {
    // Busy-wait: the cost must land on the calling thread's wall clock.
  }
}

std::optional<Bytes> KvStore::Get(const Hash& key) {
  ++stats_.reads;
  auto it = data_.find(key);
  if (it == data_.end()) {
    return std::nullopt;
  }
  if (!hot_.contains(key)) {
    ++stats_.cold_reads;
    SpinFor(options_.cold_read_latency);
    Touch(key);
  }
  return it->second;
}

void KvStore::Put(const Hash& key, Bytes value) {
  ++stats_.writes;
  data_[key] = std::move(value);
  Touch(key);
}

void KvStore::Warm(const Hash& key) { Touch(key); }

void KvStore::Touch(const Hash& key) {
  if (hot_.size() >= options_.hot_set_capacity) {
    // Cheap wholesale eviction keeps the model simple; correctness does not
    // depend on which entries stay hot, only on cold reads costing time.
    hot_.clear();
  }
  hot_.insert(key);
}

}  // namespace frn
