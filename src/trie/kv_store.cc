#include "src/trie/kv_store.h"

#include "src/common/clock.h"
#include "src/trie/persist.h"

namespace frn {

namespace {

// Per-thread stats sink installed by KvStore::StatsScope. A worker thread only
// speculates against one store at a time, so a single slot suffices.
thread_local KvStoreStats* tls_stats_sink = nullptr;

// Per-thread write-staging buffer installed by KvStore::StageScope. A commit
// worker folds exactly one store's subtries at a time, so a single slot
// suffices here too.
thread_local KvStore::StagedWrites* tls_staged = nullptr;

}  // namespace

void SpinFor(std::chrono::nanoseconds duration) {
  const double seconds = std::chrono::duration<double>(duration).count();
  Stopwatch watch;
  while (watch.ElapsedSeconds() < seconds) {
    // Busy-wait: the cost must land on the calling thread's wall clock.
  }
}

KvStore::StatsScope::StatsScope(KvStoreStats* sink) : previous_(tls_stats_sink) {
  tls_stats_sink = sink;
}

KvStore::StatsScope::~StatsScope() { tls_stats_sink = previous_; }

KvStore::StageScope::StageScope(StagedWrites* staged) : previous_(tls_staged) {
  tls_staged = staged;
}

KvStore::StageScope::~StageScope() { tls_staged = previous_; }

KvStore::KvStore() : KvStore(Options{}) {}

KvStore::KvStore(const Options& options) : options_(options) {
  if (options_.persist == nullptr) {
    return;
  }
  // Recovery path: blobs replayed from the log enter the map directly —
  // not counted as writes, not re-logged, not marked hot (a cold start has a
  // cold cache by definition).
  std::vector<std::pair<Hash, Bytes>> blobs = options_.persist->TakeReplay();
  MutexLock lock(data_mutex_);
  for (auto& [key, value] : blobs) {
    data_.emplace(key, std::move(value));
  }
}

KvStore::HotShard& KvStore::ShardFor(const Hash& key) const {
  return hot_[key.bytes()[0] % kHotShards];
}

std::optional<Bytes> KvStore::Get(const Hash& key) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (tls_stats_sink != nullptr) {
    ++tls_stats_sink->reads;
  }
  if (tls_staged != nullptr) {
    // A node this thread staged reads back without miss latency — on the
    // serial path a just-written node is hot for the same reason.
    auto it = tls_staged->index.find(key);
    if (it != tls_staged->index.end()) {
      return tls_staged->blobs[it->second].second;
    }
  }
  std::optional<Bytes> value;
  {
    ReaderLock lock(data_mutex_);
    auto it = data_.find(key);
    if (it == data_.end()) {
      return std::nullopt;
    }
    value = it->second;
  }
  if (!IsHot(key)) {
    // Two workers missing the same cold key both pay the latency, as two real
    // threads would both stall on the same uncached disk page. Under a
    // StatsScope the cost is charged to the scope's accounting instead of
    // physically spun, so worker busy time stays scheduler-independent.
    cold_reads_.fetch_add(1, std::memory_order_relaxed);
    if (tls_stats_sink != nullptr) {
      ++tls_stats_sink->cold_reads;
      tls_stats_sink->deferred_latency_seconds +=
          std::chrono::duration<double>(options_.cold_read_latency).count();
      // Same event, global view: stats() must account for every cold read
      // whether it was spun or deferred (see the KvStoreStats contract).
      deferred_nanos_.fetch_add(
          static_cast<uint64_t>(options_.cold_read_latency.count()),
          std::memory_order_relaxed);
    } else {
      SpinFor(options_.cold_read_latency);
      stall_nanos_.fetch_add(
          static_cast<uint64_t>(options_.cold_read_latency.count()),
          std::memory_order_relaxed);
    }
    Touch(key);
  }
  return value;
}

void KvStore::Put(const Hash& key, Bytes value) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  if (tls_stats_sink != nullptr) {
    ++tls_stats_sink->writes;
  }
  if (tls_staged != nullptr) {
    auto [it, inserted] = tls_staged->index.emplace(key, tls_staged->blobs.size());
    if (inserted) {
      tls_staged->blobs.emplace_back(key, std::move(value));
    } else {
      tls_staged->blobs[it->second].second = std::move(value);
    }
    return;
  }
  {
    MutexLock lock(data_mutex_);
    auto [it, inserted] = data_.try_emplace(key, std::move(value));
    if (!inserted) {
      // Content-addressed: same key, same bytes. Keep the overwrite (exact
      // pre-persistence semantics) but skip re-logging the identical blob.
      it->second = std::move(value);
    } else if (options_.persist != nullptr) {
      options_.persist->AppendBlob(it->first, it->second);
    }
  }
  Touch(key);
}

void KvStore::ApplyStaged(StagedWrites&& staged) {
  if (staged.empty()) {
    return;
  }
  {
    MutexLock lock(data_mutex_);
    for (auto& [key, value] : staged.blobs) {
      auto [it, inserted] = data_.try_emplace(key, std::move(value));
      if (!inserted) {
        it->second = std::move(value);
      } else if (options_.persist != nullptr) {
        options_.persist->AppendBlob(it->first, it->second);
      }
    }
  }
  for (const auto& kv : staged.blobs) {
    Touch(kv.first);
  }
  staged.blobs.clear();
  staged.index.clear();
}

bool KvStore::Contains(const Hash& key) const {
  ReaderLock lock(data_mutex_);
  return data_.contains(key);
}

void KvStore::Warm(const Hash& key) { Touch(key); }

bool KvStore::IsHot(const Hash& key) const {
  HotShard& shard = ShardFor(key);
  ReaderLock lock(shard.mutex);
  return shard.keys.contains(key);
}

void KvStore::CoolAll() {
  for (HotShard& shard : hot_) {
    MutexLock lock(shard.mutex);
    shard.keys.clear();
  }
  hot_count_.store(0, std::memory_order_relaxed);
}

KvStoreStats KvStore::stats() const {
  KvStoreStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.cold_reads = cold_reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.deferred_latency_seconds =
      1e-9 * static_cast<double>(deferred_nanos_.load(std::memory_order_relaxed));
  s.stall_seconds = 1e-9 * static_cast<double>(stall_nanos_.load(std::memory_order_relaxed));
  return s;
}

void KvStore::ResetStats() {
  reads_.store(0, std::memory_order_relaxed);
  cold_reads_.store(0, std::memory_order_relaxed);
  writes_.store(0, std::memory_order_relaxed);
  stall_nanos_.store(0, std::memory_order_relaxed);
  deferred_nanos_.store(0, std::memory_order_relaxed);
}

size_t KvStore::hot_size() const {
  size_t total = 0;
  for (const HotShard& shard : hot_) {
    ReaderLock lock(shard.mutex);
    total += shard.keys.size();
  }
  return total;
}

size_t KvStore::size() const {
  ReaderLock lock(data_mutex_);
  return data_.size();
}

void KvStore::Touch(const Hash& key) {
  HotShard& shard = ShardFor(key);
  {
    // Re-touching a resident key leaves occupancy unchanged, so it must never
    // trigger eviction: commits rewrite content-identical node blobs and the
    // prefetcher re-warms live paths constantly, and either one hitting the
    // capacity check while already hot would wipe the entire hot set.
    ReaderLock lock(shard.mutex);
    if (shard.keys.contains(key)) {
      return;
    }
  }
  // Capacity is enforced on the aggregate occupancy (an approximate global
  // counter), not per shard: wholesale eviction at `hot_set_capacity` total
  // entries reproduces the pre-sharding single-set model exactly in the
  // single-threaded case, so baseline cold-read numbers are unaffected by the
  // sharding. Cheap wholesale eviction keeps the model simple; correctness
  // does not depend on which entries stay hot, only on cold reads costing
  // time — so a racy over/undershoot of the counter is harmless.
  if (hot_count_.load(std::memory_order_relaxed) >=
      std::max<size_t>(1, options_.hot_set_capacity)) {
    CoolAll();
  }
  MutexLock lock(shard.mutex);
  if (shard.keys.insert(key).second) {
    hot_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace frn
