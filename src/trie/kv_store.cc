#include "src/trie/kv_store.h"

#include <mutex>

namespace frn {

namespace {

// Per-thread stats sink installed by KvStore::StatsScope. A worker thread only
// speculates against one store at a time, so a single slot suffices.
thread_local KvStoreStats* tls_stats_sink = nullptr;

}  // namespace

void SpinFor(std::chrono::nanoseconds duration) {
  auto end = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < end) {
    // Busy-wait: the cost must land on the calling thread's wall clock.
  }
}

KvStore::StatsScope::StatsScope(KvStoreStats* sink) : previous_(tls_stats_sink) {
  tls_stats_sink = sink;
}

KvStore::StatsScope::~StatsScope() { tls_stats_sink = previous_; }

KvStore::HotShard& KvStore::ShardFor(const Hash& key) const {
  return hot_[key.bytes()[0] % kHotShards];
}

std::optional<Bytes> KvStore::Get(const Hash& key) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (tls_stats_sink != nullptr) {
    ++tls_stats_sink->reads;
  }
  std::optional<Bytes> value;
  {
    std::shared_lock<std::shared_mutex> lock(data_mutex_);
    auto it = data_.find(key);
    if (it == data_.end()) {
      return std::nullopt;
    }
    value = it->second;
  }
  if (!IsHot(key)) {
    // Two workers missing the same cold key both pay the latency, as two real
    // threads would both stall on the same uncached disk page. Under a
    // StatsScope the cost is charged to the scope's accounting instead of
    // physically spun, so worker busy time stays scheduler-independent.
    cold_reads_.fetch_add(1, std::memory_order_relaxed);
    if (tls_stats_sink != nullptr) {
      ++tls_stats_sink->cold_reads;
      tls_stats_sink->deferred_latency_seconds +=
          std::chrono::duration<double>(options_.cold_read_latency).count();
    } else {
      SpinFor(options_.cold_read_latency);
      stall_nanos_.fetch_add(
          static_cast<uint64_t>(options_.cold_read_latency.count()),
          std::memory_order_relaxed);
    }
    Touch(key);
  }
  return value;
}

void KvStore::Put(const Hash& key, Bytes value) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  if (tls_stats_sink != nullptr) {
    ++tls_stats_sink->writes;
  }
  {
    std::unique_lock<std::shared_mutex> lock(data_mutex_);
    data_[key] = std::move(value);
  }
  Touch(key);
}

bool KvStore::Contains(const Hash& key) const {
  std::shared_lock<std::shared_mutex> lock(data_mutex_);
  return data_.contains(key);
}

void KvStore::Warm(const Hash& key) { Touch(key); }

bool KvStore::IsHot(const Hash& key) const {
  HotShard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  return shard.keys.contains(key);
}

void KvStore::CoolAll() {
  for (HotShard& shard : hot_) {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.keys.clear();
  }
  hot_count_.store(0, std::memory_order_relaxed);
}

KvStoreStats KvStore::stats() const {
  KvStoreStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.cold_reads = cold_reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.stall_seconds = 1e-9 * static_cast<double>(stall_nanos_.load(std::memory_order_relaxed));
  return s;
}

void KvStore::ResetStats() {
  reads_.store(0, std::memory_order_relaxed);
  cold_reads_.store(0, std::memory_order_relaxed);
  writes_.store(0, std::memory_order_relaxed);
  stall_nanos_.store(0, std::memory_order_relaxed);
}

size_t KvStore::size() const {
  std::shared_lock<std::shared_mutex> lock(data_mutex_);
  return data_.size();
}

void KvStore::Touch(const Hash& key) {
  // Capacity is enforced on the aggregate occupancy (an approximate global
  // counter), not per shard: wholesale eviction at `hot_set_capacity` total
  // entries reproduces the pre-sharding single-set model exactly in the
  // single-threaded case, so baseline cold-read numbers are unaffected by the
  // sharding. Cheap wholesale eviction keeps the model simple; correctness
  // does not depend on which entries stay hot, only on cold reads costing
  // time — so a racy over/undershoot of the counter is harmless.
  if (hot_count_.load(std::memory_order_relaxed) >=
      std::max<size_t>(1, options_.hot_set_capacity)) {
    CoolAll();
  }
  HotShard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (shard.keys.insert(key).second) {
    hot_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace frn
