// Append-only file-backed segment log beneath the simulated-latency KvStore,
// so a long `forerunner_sim --persist-dir` run can stop and resume at the
// same head root (cold-start/recovery in the spirit of Ira, PAPERS.md).
//
// On-disk format (all integers little-endian):
//   MANIFEST                 text: "FRNLOG <version>\nsegments <n>\n"
//   segment-0000.log ...     append-only record streams
//   record                   [u8 type][u32 payload_len][u64 fnv1a64][payload]
//     type 1 = node blob     payload: 32-byte content hash + blob bytes
//     type 2 = head marker   payload: 32-byte state root + u64 block height
//
// The store is content-addressed, so blobs are immutable facts: replay is a
// straight insert of every valid record, and the recovered head is the last
// head marker. Appends are flushed per record; a crash can therefore lose at
// most a torn tail record, which replay-on-open detects by checksum/length
// and truncates away (along with any later segments) before reopening the
// last segment for append. A manifest written by a different format version
// is rejected cleanly rather than guessed at.
#ifndef SRC_TRIE_PERSIST_H_
#define SRC_TRIE_PERSIST_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/common/types.h"

namespace frn {

struct PersistLogStats {
  uint64_t segments_replayed = 0;
  uint64_t blobs_replayed = 0;
  uint64_t heads_replayed = 0;
  uint64_t truncated_records = 0;  // torn/corrupt tail records dropped at open
  uint64_t blobs_appended = 0;
  uint64_t heads_appended = 0;
  uint64_t rotations = 0;
};

class PersistLog {
 public:
  static constexpr uint32_t kVersion = 1;

  // Opens (creating if absent) the log under `dir` and replays every valid
  // record. Returns null with `*error` set when the directory cannot be
  // created or the manifest belongs to a different format version; a torn
  // tail is not an error (it is truncated and counted in open_stats()).
  static std::unique_ptr<PersistLog> Open(const std::string& dir, std::string* error);

  ~PersistLog();
  PersistLog(const PersistLog&) = delete;
  PersistLog& operator=(const PersistLog&) = delete;

  // Moves the replayed blobs out (the KvStore constructor drains them into
  // its map exactly once).
  std::vector<std::pair<Hash, Bytes>> TakeReplay();

  void AppendBlob(const Hash& key, const Bytes& value);
  void AppendHead(const Hash& root, uint64_t height);

  // Test-only: make torn-tail truncation during replay fail as if the
  // filesystem refused the resize (tests run with enough privilege that a
  // real permission-based block is not reproducible). Open then refuses the
  // log instead of reopening for append after the corrupt record.
  static void SetResizeFailureForTest(bool fail);

  bool has_head() const;
  Hash head_root() const;
  uint64_t head_height() const;
  PersistLogStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  PersistLog() = default;

  bool ReplayLocked(std::string* error) FRN_REQUIRES(mutex_);
  void AppendRecordLocked(uint8_t type, const std::vector<uint8_t>& payload)
      FRN_REQUIRES(mutex_);
  void RotateIfNeededLocked() FRN_REQUIRES(mutex_);
  void WriteManifestLocked() FRN_REQUIRES(mutex_);
  std::string SegmentPath(size_t index) const;

  std::string dir_;
  mutable Mutex mutex_;
  std::FILE* segment_ FRN_GUARDED_BY(mutex_) = nullptr;
  size_t segments_ FRN_GUARDED_BY(mutex_) = 1;        // count named in the manifest
  size_t segment_bytes_ FRN_GUARDED_BY(mutex_) = 0;   // size of the open segment
  bool has_head_ FRN_GUARDED_BY(mutex_) = false;
  Hash head_root_ FRN_GUARDED_BY(mutex_);
  uint64_t head_height_ FRN_GUARDED_BY(mutex_) = 0;
  std::vector<std::pair<Hash, Bytes>> replay_ FRN_GUARDED_BY(mutex_);
  PersistLogStats stats_ FRN_GUARDED_BY(mutex_);
};

}  // namespace frn

#endif  // SRC_TRIE_PERSIST_H_
