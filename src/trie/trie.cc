#include "src/trie/trie.h"

#include <cassert>

#include "src/crypto/keccak.h"
#include "src/rlp/rlp.h"

namespace frn {

namespace {

bool IsEmptyRef(const Hash& h) { return h.IsZero(); }

size_t CommonPrefixLen(const Nibbles& a, size_t a_off, const Nibbles& b, size_t b_off) {
  size_t n = 0;
  while (a_off + n < a.size() && b_off + n < b.size() && a[a_off + n] == b[b_off + n]) {
    ++n;
  }
  return n;
}

Nibbles Slice(const Nibbles& src, size_t from, size_t count) {
  return Nibbles(src.begin() + from, src.begin() + from + count);
}

}  // namespace

Nibbles BytesToNibbles(const uint8_t* data, size_t len) {
  Nibbles out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(data[i] >> 4);
    out.push_back(data[i] & 0xF);
  }
  return out;
}

Bytes HexPrefixEncode(const Nibbles& path, bool is_leaf) {
  Bytes out;
  uint8_t flag = is_leaf ? 2 : 0;
  if (path.size() % 2 == 1) {
    out.push_back(static_cast<uint8_t>(((flag | 1) << 4) | path[0]));
    for (size_t i = 1; i < path.size(); i += 2) {
      out.push_back(static_cast<uint8_t>((path[i] << 4) | path[i + 1]));
    }
  } else {
    out.push_back(static_cast<uint8_t>(flag << 4));
    for (size_t i = 0; i < path.size(); i += 2) {
      out.push_back(static_cast<uint8_t>((path[i] << 4) | path[i + 1]));
    }
  }
  return out;
}

Nibbles HexPrefixDecode(const Bytes& encoded, bool* is_leaf) {
  Nibbles out;
  if (encoded.empty()) {
    *is_leaf = false;
    return out;
  }
  uint8_t flag = encoded[0] >> 4;
  *is_leaf = (flag & 2) != 0;
  if (flag & 1) {
    out.push_back(encoded[0] & 0xF);
  }
  for (size_t i = 1; i < encoded.size(); ++i) {
    out.push_back(encoded[i] >> 4);
    out.push_back(encoded[i] & 0xF);
  }
  return out;
}

Hash Mpt::EmptyRoot() {
  static const Hash kRoot = [] {
    Bytes empty = RlpEncoder::EncodeBytes(Bytes{});
    return Keccak256(empty);
  }();
  return kRoot;
}

bool Mpt::LoadNode(const Hash& ref, Node* out) {
  auto blob = store_->Get(ref);
  if (!blob) {
    return false;
  }
  return DecodeNodeBlob(*blob, out);
}

bool Mpt::DecodeNodeBlob(const Bytes& blob, Node* out) {
  RlpDecoder::Item item;
  if (!RlpDecoder::Decode(blob, &item) || !item.is_list) {
    return false;
  }
  if (item.children.size() == 2) {
    bool is_leaf = false;
    out->path = HexPrefixDecode(item.children[0].payload, &is_leaf);
    if (is_leaf) {
      out->kind = Node::Kind::kLeaf;
      out->value = item.children[1].payload;
    } else {
      out->kind = Node::Kind::kExtension;
      std::array<uint8_t, 32> h{};
      if (item.children[1].payload.size() == 32) {
        std::copy(item.children[1].payload.begin(), item.children[1].payload.end(), h.begin());
      }
      out->child = Hash(h);
    }
    return true;
  }
  if (item.children.size() == 17) {
    out->kind = Node::Kind::kBranch;
    for (int i = 0; i < 16; ++i) {
      std::array<uint8_t, 32> h{};
      if (item.children[i].payload.size() == 32) {
        std::copy(item.children[i].payload.begin(), item.children[i].payload.end(), h.begin());
      }
      out->children[i] = Hash(h);
    }
    out->value = item.children[16].payload;
    return true;
  }
  return false;
}

Hash Mpt::StoreNode(const Node& node) {
  std::vector<Bytes> items;
  switch (node.kind) {
    case Node::Kind::kLeaf:
      items.push_back(RlpEncoder::EncodeBytes(HexPrefixEncode(node.path, true)));
      items.push_back(RlpEncoder::EncodeBytes(node.value));
      break;
    case Node::Kind::kExtension: {
      items.push_back(RlpEncoder::EncodeBytes(HexPrefixEncode(node.path, false)));
      const auto& b = node.child.bytes();
      items.push_back(RlpEncoder::EncodeBytes(b.data(), b.size()));
      break;
    }
    case Node::Kind::kBranch:
      for (int i = 0; i < 16; ++i) {
        if (IsEmptyRef(node.children[i])) {
          items.push_back(RlpEncoder::EncodeBytes(Bytes{}));
        } else {
          const auto& b = node.children[i].bytes();
          items.push_back(RlpEncoder::EncodeBytes(b.data(), b.size()));
        }
      }
      items.push_back(RlpEncoder::EncodeBytes(node.value));
      break;
  }
  Bytes encoded = RlpEncoder::EncodeList(items);
  Hash ref = Keccak256(encoded);
  store_->Put(ref, std::move(encoded));
  return ref;
}

std::optional<Bytes> Mpt::Get(const Hash& root, const Bytes& key) {
  if (root == EmptyRoot() || IsEmptyRef(root)) {
    return std::nullopt;
  }
  Nibbles nibbles = BytesToNibbles(key.data(), key.size());
  return GetAt(root, nibbles, 0);
}

std::optional<Bytes> Mpt::GetAt(const Hash& ref, const Nibbles& key, size_t depth) {
  Node node;
  if (!LoadNode(ref, &node)) {
    return std::nullopt;
  }
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      if (key.size() - depth == node.path.size() &&
          CommonPrefixLen(key, depth, node.path, 0) == node.path.size()) {
        return node.value;
      }
      return std::nullopt;
    }
    case Node::Kind::kExtension: {
      if (key.size() - depth < node.path.size() ||
          CommonPrefixLen(key, depth, node.path, 0) != node.path.size()) {
        return std::nullopt;
      }
      return GetAt(node.child, key, depth + node.path.size());
    }
    case Node::Kind::kBranch: {
      if (depth == key.size()) {
        if (node.value.empty()) {
          return std::nullopt;
        }
        return node.value;
      }
      const Hash& child = node.children[key[depth]];
      if (IsEmptyRef(child)) {
        return std::nullopt;
      }
      return GetAt(child, key, depth + 1);
    }
  }
  return std::nullopt;
}

Hash Mpt::Put(const Hash& root, const Bytes& key, const Bytes& value) {
  Nibbles nibbles = BytesToNibbles(key.data(), key.size());
  Hash effective_root = (root == EmptyRoot()) ? Hash() : root;
  Hash new_ref;
  if (value.empty()) {
    if (IsEmptyRef(effective_root)) {
      return EmptyRoot();
    }
    new_ref = DeleteAt(effective_root, nibbles, 0);
  } else {
    new_ref = PutAt(effective_root, nibbles, 0, value);
  }
  return IsEmptyRef(new_ref) ? EmptyRoot() : new_ref;
}

Hash Mpt::PutAt(const Hash& ref, const Nibbles& key, size_t depth, const Bytes& value) {
  if (IsEmptyRef(ref)) {
    Node leaf;
    leaf.kind = Node::Kind::kLeaf;
    leaf.path = Slice(key, depth, key.size() - depth);
    leaf.value = value;
    return StoreNode(leaf);
  }
  Node node;
  bool ok = LoadNode(ref, &node);
  assert(ok && "dangling trie reference");
  (void)ok;
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      size_t match = CommonPrefixLen(key, depth, node.path, 0);
      if (match == node.path.size() && depth + match == key.size()) {
        node.value = value;  // exact overwrite
        return StoreNode(node);
      }
      // Split: branch at the divergence point.
      Node branch;
      branch.kind = Node::Kind::kBranch;
      // Existing leaf goes under its next nibble (or into the value slot).
      if (match == node.path.size()) {
        branch.value = node.value;
      } else {
        Node old_leaf;
        old_leaf.kind = Node::Kind::kLeaf;
        old_leaf.path = Slice(node.path, match + 1, node.path.size() - match - 1);
        old_leaf.value = node.value;
        branch.children[node.path[match]] = StoreNode(old_leaf);
      }
      // New value likewise.
      if (depth + match == key.size()) {
        branch.value = value;
      } else {
        Node new_leaf;
        new_leaf.kind = Node::Kind::kLeaf;
        new_leaf.path = Slice(key, depth + match + 1, key.size() - depth - match - 1);
        new_leaf.value = value;
        branch.children[key[depth + match]] = StoreNode(new_leaf);
      }
      Hash branch_ref = StoreNode(branch);
      if (match == 0) {
        return branch_ref;
      }
      Node ext;
      ext.kind = Node::Kind::kExtension;
      ext.path = Slice(node.path, 0, match);
      ext.child = branch_ref;
      return StoreNode(ext);
    }
    case Node::Kind::kExtension: {
      size_t match = CommonPrefixLen(key, depth, node.path, 0);
      if (match == node.path.size()) {
        node.child = PutAt(node.child, key, depth + match, value);
        return StoreNode(node);
      }
      // Split the extension.
      Node branch;
      branch.kind = Node::Kind::kBranch;
      // Remainder of the old extension path.
      Hash old_sub;
      if (match + 1 == node.path.size()) {
        old_sub = node.child;
      } else {
        Node tail;
        tail.kind = Node::Kind::kExtension;
        tail.path = Slice(node.path, match + 1, node.path.size() - match - 1);
        tail.child = node.child;
        old_sub = StoreNode(tail);
      }
      branch.children[node.path[match]] = old_sub;
      if (depth + match == key.size()) {
        branch.value = value;
      } else {
        Node new_leaf;
        new_leaf.kind = Node::Kind::kLeaf;
        new_leaf.path = Slice(key, depth + match + 1, key.size() - depth - match - 1);
        new_leaf.value = value;
        branch.children[key[depth + match]] = StoreNode(new_leaf);
      }
      Hash branch_ref = StoreNode(branch);
      if (match == 0) {
        return branch_ref;
      }
      Node ext;
      ext.kind = Node::Kind::kExtension;
      ext.path = Slice(node.path, 0, match);
      ext.child = branch_ref;
      return StoreNode(ext);
    }
    case Node::Kind::kBranch: {
      if (depth == key.size()) {
        node.value = value;
      } else {
        uint8_t idx = key[depth];
        node.children[idx] = PutAt(node.children[idx], key, depth + 1, value);
      }
      return StoreNode(node);
    }
  }
  return Hash();
}

Hash Mpt::DeleteAt(const Hash& ref, const Nibbles& key, size_t depth) {
  Node node;
  if (!LoadNode(ref, &node)) {
    return ref;  // key not present under a dangling ref: no change
  }
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      if (key.size() - depth == node.path.size() &&
          CommonPrefixLen(key, depth, node.path, 0) == node.path.size()) {
        return Hash();  // removed
      }
      return ref;  // not present
    }
    case Node::Kind::kExtension: {
      if (key.size() - depth < node.path.size() ||
          CommonPrefixLen(key, depth, node.path, 0) != node.path.size()) {
        return ref;
      }
      Hash new_child = DeleteAt(node.child, key, depth + node.path.size());
      if (new_child == node.child) {
        return ref;
      }
      if (IsEmptyRef(new_child)) {
        return Hash();
      }
      node.child = new_child;
      return Normalize(node);
    }
    case Node::Kind::kBranch: {
      if (depth == key.size()) {
        if (node.value.empty()) {
          return ref;
        }
        node.value.clear();
      } else {
        uint8_t idx = key[depth];
        if (IsEmptyRef(node.children[idx])) {
          return ref;
        }
        Hash new_child = DeleteAt(node.children[idx], key, depth + 1);
        if (new_child == node.children[idx]) {
          return ref;
        }
        node.children[idx] = new_child;
      }
      return Normalize(node);
    }
  }
  return ref;
}

Hash Mpt::Normalize(const Node& node) {
  if (node.kind == Node::Kind::kBranch) {
    int live_children = 0;
    int live_index = -1;
    for (int i = 0; i < 16; ++i) {
      if (!IsEmptyRef(node.children[i])) {
        ++live_children;
        live_index = i;
      }
    }
    if (live_children == 0 && node.value.empty()) {
      return Hash();
    }
    if (live_children >= 2 || (live_children >= 1 && !node.value.empty())) {
      return StoreNode(node);
    }
    if (live_children == 0) {
      // Only the value slot remains: collapse into a leaf with empty path.
      Node leaf;
      leaf.kind = Node::Kind::kLeaf;
      leaf.value = node.value;
      return StoreNode(leaf);
    }
    // Exactly one child and no value: merge the nibble into the child.
    Node child;
    bool ok = LoadNode(node.children[live_index], &child);
    assert(ok && "dangling branch child");
    (void)ok;
    if (child.kind == Node::Kind::kBranch) {
      Node ext;
      ext.kind = Node::Kind::kExtension;
      ext.path = {static_cast<uint8_t>(live_index)};
      ext.child = node.children[live_index];
      return StoreNode(ext);
    }
    // Leaf or extension: prepend the nibble.
    child.path.insert(child.path.begin(), static_cast<uint8_t>(live_index));
    return StoreNode(child);
  }
  if (node.kind == Node::Kind::kExtension) {
    Node child;
    bool ok = LoadNode(node.child, &child);
    assert(ok && "dangling extension child");
    (void)ok;
    if (child.kind == Node::Kind::kBranch) {
      return StoreNode(node);
    }
    // Merge paths with a leaf or chained extension.
    Node merged = child;
    merged.path.insert(merged.path.begin(), node.path.begin(), node.path.end());
    return StoreNode(merged);
  }
  return StoreNode(node);
}

std::optional<Bytes> Mpt::Prefetch(const Hash& root, const Bytes& key) {
  // A plain Get already heats every node on the path via KvStore::Get.
  return Get(root, key);
}

bool Mpt::Prove(const Hash& root, const Bytes& key, std::vector<Bytes>* proof) {
  proof->clear();
  if (root == EmptyRoot() || IsEmptyRef(root)) {
    return true;  // the empty trie proves absence with an empty proof
  }
  Nibbles nibbles = BytesToNibbles(key.data(), key.size());
  Hash ref = root;
  size_t depth = 0;
  while (true) {
    auto blob = store_->Get(ref);
    if (!blob) {
      return false;
    }
    proof->push_back(*blob);
    Node node;
    if (!DecodeNodeBlob(*blob, &node)) {
      return false;
    }
    switch (node.kind) {
      case Node::Kind::kLeaf:
        return true;  // terminates (match or divergence both prove something)
      case Node::Kind::kExtension: {
        if (nibbles.size() - depth < node.path.size() ||
            CommonPrefixLen(nibbles, depth, node.path, 0) != node.path.size()) {
          return true;  // divergence proves absence
        }
        depth += node.path.size();
        ref = node.child;
        break;
      }
      case Node::Kind::kBranch: {
        if (depth == nibbles.size()) {
          return true;
        }
        const Hash& child = node.children[nibbles[depth]];
        if (IsEmptyRef(child)) {
          return true;  // empty child proves absence
        }
        ++depth;
        ref = child;
        break;
      }
    }
  }
}

bool Mpt::VerifyProof(const Hash& root, const Bytes& key, const std::vector<Bytes>& proof,
                      std::optional<Bytes>* value) {
  *value = std::nullopt;
  if (proof.empty()) {
    return root == EmptyRoot() || IsEmptyRef(root);  // valid only for the empty trie
  }
  Nibbles nibbles = BytesToNibbles(key.data(), key.size());
  Hash expected = root;
  size_t depth = 0;
  for (size_t i = 0; i < proof.size(); ++i) {
    if (!(Keccak256(proof[i]) == expected)) {
      return false;  // blob does not hash to the committed reference
    }
    Node node;
    if (!DecodeNodeBlob(proof[i], &node)) {
      return false;
    }
    bool is_last = (i + 1 == proof.size());
    switch (node.kind) {
      case Node::Kind::kLeaf: {
        if (!is_last) {
          return false;
        }
        if (nibbles.size() - depth == node.path.size() &&
            CommonPrefixLen(nibbles, depth, node.path, 0) == node.path.size()) {
          *value = node.value;
        }
        return true;  // a divergent leaf proves absence
      }
      case Node::Kind::kExtension: {
        if (nibbles.size() - depth < node.path.size() ||
            CommonPrefixLen(nibbles, depth, node.path, 0) != node.path.size()) {
          return is_last;  // divergence proves absence, but must terminate
        }
        depth += node.path.size();
        expected = node.child;
        if (is_last) {
          return false;  // proof stops before the promised child
        }
        break;
      }
      case Node::Kind::kBranch: {
        if (depth == nibbles.size()) {
          if (!is_last) {
            return false;
          }
          if (!node.value.empty()) {
            *value = node.value;
          }
          return true;
        }
        const Hash& child = node.children[nibbles[depth]];
        if (IsEmptyRef(child)) {
          return is_last;  // empty slot proves absence
        }
        ++depth;
        expected = child;
        if (is_last) {
          return false;
        }
        break;
      }
    }
  }
  return false;
}

}  // namespace frn
