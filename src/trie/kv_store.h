// Content-addressed node store backing the Merkle-Patricia trie, with a
// simulated disk-latency model. The paper's prefetcher exists because trie
// lookups on the critical path pay disk I/O + decode + key-value lookup costs;
// here those costs are charged as a calibrated busy-wait on cold reads so that
// warming the cache off the critical path yields a real wall-clock win.
//
// Thread safety: the store serves concurrent readers (speculation workers
// executing against immutable head snapshots) alongside a single writer (the
// coordinator committing a block, or a speculative SetCode storing a
// content-addressed code blob). The blob map is guarded by a shared mutex
// (shared for Get/Contains, exclusive for Put); the hot set is sharded by key
// so worker threads touching disjoint trie paths rarely contend; statistics
// are atomics. Lock discipline is machine-checked: every guarded member
// carries FRN_GUARDED_BY and a clang -Wthread-safety build rejects unguarded
// access (see src/common/sync.h and DESIGN.md §10).
#ifndef SRC_TRIE_KV_STORE_H_
#define SRC_TRIE_KV_STORE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/common/types.h"

namespace frn {

class PersistLog;

// Busy-waits for the given duration (models I/O latency without yielding,
// matching the discrete-time benchmark methodology: the cost lands on the
// calling thread's wall clock whether it is the critical path or a worker).
void SpinFor(std::chrono::nanoseconds duration);

struct KvStoreStats {
  uint64_t reads = 0;
  uint64_t cold_reads = 0;   // reads that paid the miss latency
  uint64_t writes = 0;
  // Cold-read latency charged to the accounting model instead of physically
  // spun. Threads under a StatsScope (speculation workers) accumulate the
  // miss cost here so their modeled busy time includes it exactly once,
  // independent of how the OS schedules the worker threads.
  //
  // Contract: every deferred cold read is recorded in exactly two places —
  // once in the installing thread's sink (per-worker attribution) and once in
  // the store's global total reported by stats(). The two views cover the
  // same events; summing a sink into the global total double-counts.
  // ResetStats() zeroes the store's global total only: installed sinks belong
  // to their scopes and are never touched by the store.
  double deferred_latency_seconds = 0;
  // Simulated-disk time physically spun (critical-path cold reads, i.e. reads
  // outside any StatsScope). deferred + stall together cover every cold read.
  double stall_seconds = 0;
};

// In-memory content-addressed store. A bounded "hot set" models the OS page
// cache: reads outside the hot set pay `cold_read_latency` and then enter it.
class KvStore {
 public:
  struct Options {
    std::chrono::nanoseconds cold_read_latency{2000};  // ~2us: SSD page + decode
    size_t hot_set_capacity = 1 << 16;
    // Optional durability (borrowed; must outlive the store): the constructor
    // replays the log's blobs into the map, and every first-time Put of a key
    // is appended. The store is content-addressed, so a re-Put of a resident
    // key carries identical bytes and is not re-logged — log growth is
    // bounded by distinct blobs, and replay is insert-only.
    PersistLog* persist = nullptr;
  };

  KvStore();
  explicit KvStore(const Options& options);

  // Looks up a node blob; charges latency when the key is not hot.
  std::optional<Bytes> Get(const Hash& key);
  // Inserts a node blob; newly written nodes are hot.
  void Put(const Hash& key, Bytes value);
  bool Contains(const Hash& key) const;
  // Marks a key hot without charging latency (prefetch path).
  void Warm(const Hash& key);
  bool IsHot(const Hash& key) const;
  // Evicts the whole hot set (e.g. between benchmark phases).
  void CoolAll();
  // Current hot-set occupancy (sums the shards; test/diagnostic use).
  size_t hot_size() const;

  // Snapshot of the global counters (consistent enough for reporting; the
  // counters are independent atomics).
  KvStoreStats stats() const;
  void ResetStats();
  size_t size() const;

  // Routes this thread's read counters additionally into `sink` for the
  // lifetime of the scope. Speculation workers use this to attribute
  // cache-hit rates per worker without cross-thread sampling races. While a
  // scope is installed, cold reads defer their latency into the sink instead
  // of busy-waiting: off-critical-path time is charged by the model, not by
  // physically stalling a worker. (Deferred latency still lands in the global
  // stats() total once — see the KvStoreStats contract above.)
  class StatsScope {
   public:
    explicit StatsScope(KvStoreStats* sink);
    ~StatsScope();
    StatsScope(const StatsScope&) = delete;
    StatsScope& operator=(const StatsScope&) = delete;

   private:
    KvStoreStats* previous_;
  };

  // Write staging for the parallel commit pipeline: node blobs produced by
  // independent subtrie folds are buffered per worker and applied to the
  // shared map in one exclusive-lock batch. While a StageScope is installed
  // on a thread, Put() appends to the buffer instead of taking the data lock,
  // and Get() consults the buffer first — a just-staged node reads back
  // without miss latency, exactly like a just-written node on the serial
  // path (newly written nodes are hot).
  struct StagedWrites {
    std::vector<std::pair<Hash, Bytes>> blobs;  // in Put order
    std::unordered_map<Hash, size_t, HashHasher> index;

    bool empty() const { return blobs.empty(); }
  };

  class StageScope {
   public:
    explicit StageScope(StagedWrites* staged);
    ~StageScope();
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

   private:
    StagedWrites* previous_;
  };

  // Applies a staging buffer to the store under a single exclusive lock, in
  // Put order, routing each blob through the same hot-set occupancy
  // accounting as a direct Put. Writes were already counted when staged.
  void ApplyStaged(StagedWrites&& staged);

 private:
  // The hot set is sharded to keep speculation workers from serializing on a
  // single lock; capacity is enforced on the aggregate occupancy (approximate
  // global counter, wholesale eviction of every shard at capacity), matching
  // the pre-sharding single-set model (correctness never depends on which
  // entries stay hot).
  static constexpr size_t kHotShards = 16;
  struct HotShard {
    mutable SharedMutex mutex;
    std::unordered_set<Hash, HashHasher> keys FRN_GUARDED_BY(mutex);
  };

  HotShard& ShardFor(const Hash& key) const;
  void Touch(const Hash& key);

  Options options_;
  mutable SharedMutex data_mutex_;
  std::unordered_map<Hash, Bytes, HashHasher> data_ FRN_GUARDED_BY(data_mutex_);
  mutable std::array<HotShard, kHotShards> hot_;
  // Approximate aggregate hot-set occupancy (drives wholesale eviction).
  std::atomic<size_t> hot_count_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> cold_reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> stall_nanos_{0};
  // Global total of latency deferred into StatsScope sinks (see the
  // KvStoreStats contract: same events as the sinks, reported once here).
  std::atomic<uint64_t> deferred_nanos_{0};
};

}  // namespace frn

#endif  // SRC_TRIE_KV_STORE_H_
