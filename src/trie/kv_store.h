// Content-addressed node store backing the Merkle-Patricia trie, with a
// simulated disk-latency model. The paper's prefetcher exists because trie
// lookups on the critical path pay disk I/O + decode + key-value lookup costs;
// here those costs are charged as a calibrated busy-wait on cold reads so that
// warming the cache off the critical path yields a real wall-clock win.
#ifndef SRC_TRIE_KV_STORE_H_
#define SRC_TRIE_KV_STORE_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/common/types.h"

namespace frn {

// Busy-waits for the given duration (models I/O latency without yielding,
// matching the single-threaded discrete-time benchmark methodology).
void SpinFor(std::chrono::nanoseconds duration);

struct KvStoreStats {
  uint64_t reads = 0;
  uint64_t cold_reads = 0;   // reads that paid the miss latency
  uint64_t writes = 0;
};

// In-memory content-addressed store. A bounded "hot set" models the OS page
// cache: reads outside the hot set pay `cold_read_latency` and then enter it.
class KvStore {
 public:
  struct Options {
    std::chrono::nanoseconds cold_read_latency{2000};  // ~2us: SSD page + decode
    size_t hot_set_capacity = 1 << 16;
  };

  KvStore() : KvStore(Options{}) {}
  explicit KvStore(const Options& options) : options_(options) {}

  // Looks up a node blob; charges latency when the key is not hot.
  std::optional<Bytes> Get(const Hash& key);
  // Inserts a node blob; newly written nodes are hot.
  void Put(const Hash& key, Bytes value);
  bool Contains(const Hash& key) const { return data_.contains(key); }
  // Marks a key hot without charging latency (prefetch path).
  void Warm(const Hash& key);
  bool IsHot(const Hash& key) const { return hot_.contains(key); }
  // Evicts the whole hot set (e.g. between benchmark phases).
  void CoolAll() { hot_.clear(); }

  const KvStoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = KvStoreStats{}; }
  size_t size() const { return data_.size(); }

 private:
  void Touch(const Hash& key);

  Options options_;
  std::unordered_map<Hash, Bytes, HashHasher> data_;
  std::unordered_set<Hash, HashHasher> hot_;
  KvStoreStats stats_;
};

}  // namespace frn

#endif  // SRC_TRIE_KV_STORE_H_
