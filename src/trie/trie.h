// Hexary Merkle-Patricia trie over a content-addressed KvStore, following the
// Yellow Paper's node structure (leaf / extension / branch) and hex-prefix
// path encoding. The trie is persistent: every mutation returns a new root
// hash and old roots remain readable, which gives the state snapshots that
// speculative pre-execution runs against for free.
#ifndef SRC_TRIE_TRIE_H_
#define SRC_TRIE_TRIE_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/trie/kv_store.h"

namespace frn {

// A nibble path (each element 0..15).
using Nibbles = std::vector<uint8_t>;

// Converts a byte key to its nibble expansion.
Nibbles BytesToNibbles(const uint8_t* data, size_t len);

// Hex-prefix encoding of a nibble path (Yellow Paper appendix C).
Bytes HexPrefixEncode(const Nibbles& path, bool is_leaf);
// Inverse of HexPrefixEncode; sets *is_leaf from the flag nibble.
Nibbles HexPrefixDecode(const Bytes& encoded, bool* is_leaf);

class Mpt {
 public:
  explicit Mpt(KvStore* store) : store_(store) {}

  // The canonical root hash of the empty trie (keccak of RLP empty string).
  static Hash EmptyRoot();

  // Reads the value at `key` under `root`; nullopt when absent.
  std::optional<Bytes> Get(const Hash& root, const Bytes& key);
  // Writes `value` at `key`; empty value deletes. Returns the new root.
  Hash Put(const Hash& root, const Bytes& key, const Bytes& value);
  // Walks the path for `key` so that all touched nodes become hot in the
  // store (the prefetcher's mechanism); returns the value if present.
  std::optional<Bytes> Prefetch(const Hash& root, const Bytes& key);

  // Produces a Merkle proof for `key` under `root`: the ordered node blobs
  // from the root down to the terminating node. The proof demonstrates either
  // the presence of the returned value or the key's absence. Returns false if
  // the root is unknown to the store.
  bool Prove(const Hash& root, const Bytes& key, std::vector<Bytes>* proof);

  // Verifies a proof against a bare root hash without any store access.
  // On success sets *value to the proven value (nullopt proves absence).
  static bool VerifyProof(const Hash& root, const Bytes& key,
                          const std::vector<Bytes>& proof, std::optional<Bytes>* value);

  KvStore* store() { return store_; }

 private:
  // Decoded node representation.
  struct Node {
    enum class Kind { kLeaf, kExtension, kBranch } kind = Kind::kLeaf;
    Nibbles path;                    // leaf/extension only
    Bytes value;                     // leaf and branch value slot
    Hash child;                      // extension child
    std::array<Hash, 16> children{};  // branch children (zero hash = empty)
  };

  // Decodes a serialized node blob; false on malformed input.
  static bool DecodeNodeBlob(const Bytes& blob, Node* out);
  // Loads and decodes the node stored under `ref`; false if absent/corrupt.
  bool LoadNode(const Hash& ref, Node* out);
  // Encodes + stores a node, returning its hash reference.
  Hash StoreNode(const Node& node);

  std::optional<Bytes> GetAt(const Hash& ref, const Nibbles& key, size_t depth);
  // Returns the new ref for the subtree rooted at `ref` after inserting.
  Hash PutAt(const Hash& ref, const Nibbles& key, size_t depth, const Bytes& value);
  // Returns the new ref after deleting; zero hash means subtree became empty.
  Hash DeleteAt(const Hash& ref, const Nibbles& key, size_t depth);
  // Collapses single-child branches / chained extensions after deletion.
  Hash Normalize(const Node& node);

  KvStore* store_;
};

}  // namespace frn

#endif  // SRC_TRIE_TRIE_H_
