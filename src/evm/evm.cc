#include "src/evm/evm.h"

#include <algorithm>
#include <cassert>

#include "src/crypto/keccak.h"
#include "src/rlp/rlp.h"

namespace frn {

namespace {

// Hard cap on addressable memory per frame; offsets beyond this fail the
// frame as out-of-gas (the quadratic cost would exceed any real gas limit).
constexpr uint64_t kMaxMemoryBytes = 16u << 20;

uint64_t MemWordCost(uint64_t words) {
  return GasSchedule::kMemoryWord * words + words * words / GasSchedule::kQuadCoeffDiv;
}

class EvmMemory {
 public:
  // Expands memory to cover [offset, offset+size) and returns the expansion
  // gas, or UINT64_MAX when the range is unaddressable.
  uint64_t ExpandFor(const U256& offset, const U256& size) {
    if (size.IsZero()) {
      return 0;
    }
    if (!offset.FitsUint64() || !size.FitsUint64()) {
      return UINT64_MAX;
    }
    uint64_t off = offset.AsUint64();
    uint64_t len = size.AsUint64();
    if (off > kMaxMemoryBytes || len > kMaxMemoryBytes || off + len > kMaxMemoryBytes) {
      return UINT64_MAX;
    }
    uint64_t end_words = (off + len + 31) / 32;
    uint64_t cur_words = data_.size() / 32;
    if (end_words <= cur_words) {
      return 0;
    }
    uint64_t cost = MemWordCost(end_words) - MemWordCost(cur_words);
    data_.resize(end_words * 32, 0);
    return cost;
  }

  U256 LoadWord(uint64_t offset) const {
    return U256::FromBigEndian(data_.data() + offset, 32);
  }

  void StoreWord(uint64_t offset, const U256& value) {
    auto be = value.ToBigEndian();
    std::copy(be.begin(), be.end(), data_.begin() + static_cast<ptrdiff_t>(offset));
  }

  void StoreByte(uint64_t offset, uint8_t value) { data_[offset] = value; }

  Bytes Slice(uint64_t offset, uint64_t size) const {
    Bytes out(size, 0);
    if (size > 0) {
      std::copy(data_.begin() + static_cast<ptrdiff_t>(offset),
                data_.begin() + static_cast<ptrdiff_t>(offset + size), out.begin());
    }
    return out;
  }

  void Write(uint64_t offset, const uint8_t* src, uint64_t size) {
    std::copy(src, src + size, data_.begin() + static_cast<ptrdiff_t>(offset));
  }

  size_t size() const { return data_.size(); }

 private:
  Bytes data_;
};

// Valid JUMPDEST positions: code positions not inside PUSH immediates.
std::vector<bool> ComputeJumpDests(const Bytes& code) {
  std::vector<bool> valid(code.size(), false);
  for (size_t i = 0; i < code.size(); ++i) {
    uint8_t op = code[i];
    if (op == static_cast<uint8_t>(Opcode::kJumpdest)) {
      valid[i] = true;
    }
    if (IsPush(op)) {
      i += static_cast<size_t>(PushSize(op));
    }
  }
  return valid;
}

}  // namespace

uint64_t Transaction::IntrinsicGas() const {
  uint64_t gas = GasSchedule::kTxBase;
  for (uint8_t b : data) {
    gas += (b == 0) ? GasSchedule::kTxDataZeroByte : GasSchedule::kTxDataNonZeroByte;
  }
  return gas;
}

const char* ExecStatusName(ExecStatus status) {
  switch (status) {
    case ExecStatus::kSuccess:
      return "success";
    case ExecStatus::kReverted:
      return "reverted";
    case ExecStatus::kOutOfGas:
      return "out-of-gas";
    case ExecStatus::kInvalidInstruction:
      return "invalid-instruction";
    case ExecStatus::kBadNonce:
      return "bad-nonce";
    case ExecStatus::kInsufficientBalance:
      return "insufficient-balance";
  }
  return "unknown";
}

Address Evm::CreateAddress(const Address& creator, uint64_t nonce) {
  std::vector<Bytes> items;
  items.push_back(RlpEncoder::EncodeBytes(creator.bytes().data(), creator.bytes().size()));
  items.push_back(RlpEncoder::EncodeUint(nonce));
  Hash h = Keccak256(RlpEncoder::EncodeList(items));
  std::array<uint8_t, 20> out;
  std::copy(h.bytes().begin() + 12, h.bytes().end(), out.begin());
  return Address(out);
}

Hash Evm::BlockHash(uint64_t chain_seed, uint64_t number) {
  uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<uint8_t>(chain_seed >> (8 * i));
    buf[8 + i] = static_cast<uint8_t>(number >> (8 * i));
  }
  return Keccak256(buf, sizeof buf);
}

ExecResult Evm::ExecuteTransaction(const Transaction& tx, Tracer* tracer) {
  ExecResult result;
  if (state_->GetNonce(tx.sender) != tx.nonce) {
    result.status = ExecStatus::kBadNonce;
    return result;
  }
  U256 gas_cost = U256(tx.gas_limit) * tx.gas_price;
  if (state_->GetBalance(tx.sender) < gas_cost + tx.value) {
    result.status = ExecStatus::kInsufficientBalance;
    return result;
  }
  uint64_t intrinsic = tx.IntrinsicGas();
  if (intrinsic > tx.gas_limit) {
    result.status = ExecStatus::kOutOfGas;
    result.gas_used = tx.gas_limit;
    return result;
  }
  // Buy gas, bump nonce.
  state_->SubBalance(tx.sender, gas_cost);
  state_->SetNonce(tx.sender, tx.nonce + 1);

  std::vector<LogEntry> logs;
  CallOutcome outcome;
  if (tx.to.IsZero()) {
    // Contract-creation transaction: tx.data is the init code and the new
    // account address is derived from (sender, nonce). The receipt-style
    // return data is the 20-byte deployed address.
    Address new_addr = CreateAddress(tx.sender, tx.nonce);
    outcome = Create(tx.sender, new_addr, tx.value, tx.data, tx.gas_limit - intrinsic, 0,
                     false, tx.sender, tx.gas_price, &logs, tracer);
    if (outcome.success) {
      outcome.output.assign(new_addr.bytes().begin(), new_addr.bytes().end());
    }
  } else {
    CallParams params;
    params.caller = tx.sender;
    params.to = tx.to;
    params.code_addr = tx.to;
    params.value = tx.value;
    params.data = &tx.data;
    params.gas = tx.gas_limit - intrinsic;
    params.depth = 0;
    params.origin = tx.sender;
    params.gas_price = tx.gas_price;
    outcome = Call(params, &logs, tracer);
  }

  uint64_t gas_used = tx.gas_limit - outcome.gas_left;
  result.gas_used = gas_used;
  result.return_data = std::move(outcome.output);
  if (outcome.success) {
    result.status = ExecStatus::kSuccess;
    result.logs = std::move(logs);
  } else {
    result.status = outcome.out_of_gas ? ExecStatus::kOutOfGas : ExecStatus::kReverted;
  }
  // Refund unused gas and pay the miner.
  state_->AddBalance(tx.sender, U256(outcome.gas_left) * tx.gas_price);
  state_->AddBalance(block_.coinbase, U256(gas_used) * tx.gas_price);
  return result;
}

Evm::CallOutcome Evm::Call(const CallParams& params, std::vector<LogEntry>* logs,
                           Tracer* tracer) {
  CallOutcome outcome;
  outcome.gas_left = params.gas;
  if (params.depth > static_cast<int>(GasSchedule::kCallStipendDepth)) {
    outcome.success = false;
    return outcome;
  }
  int snapshot = state_->Snapshot();
  size_t log_mark = logs->size();
  if (params.transfer_value && !params.value.IsZero()) {
    if (!state_->SubBalance(params.caller, params.value)) {
      outcome.success = false;
      return outcome;
    }
    state_->AddBalance(params.to, params.value);
  }
  Bytes code = state_->GetCode(params.code_addr);
  if (code.empty()) {
    outcome.success = true;  // plain transfer
    return outcome;
  }
  outcome = Interpret(params, code, logs, tracer);
  if (!outcome.success) {
    state_->RevertToSnapshot(snapshot);
    logs->resize(log_mark);
  }
  return outcome;
}

Evm::CallOutcome Evm::Create(const Address& creator, const Address& new_addr,
                             const U256& value, const Bytes& init, uint64_t gas, int depth,
                             bool is_static, const Address& origin, const U256& gas_price,
                             std::vector<LogEntry>* logs, Tracer* tracer) {
  CallOutcome outcome;
  outcome.gas_left = gas;
  if (is_static || depth > static_cast<int>(GasSchedule::kCallStipendDepth)) {
    outcome.success = false;
    return outcome;
  }
  int snapshot = state_->Snapshot();
  size_t log_mark = logs->size();
  if (!value.IsZero()) {
    if (!state_->SubBalance(creator, value)) {
      outcome.success = false;
      return outcome;
    }
    state_->AddBalance(new_addr, value);
  }
  state_->CreateAccount(new_addr);
  Bytes empty_calldata;
  CallParams params;
  params.caller = creator;
  params.to = new_addr;
  params.code_addr = new_addr;
  params.value = value;
  params.data = &empty_calldata;
  params.gas = gas;
  params.depth = depth;
  params.origin = origin;
  params.gas_price = gas_price;
  outcome = Interpret(params, init, logs, tracer);
  if (outcome.success) {
    // Code-deposit charge: 200 gas per byte of runtime code.
    uint64_t deposit = 200 * static_cast<uint64_t>(outcome.output.size());
    if (outcome.gas_left < deposit) {
      outcome.success = false;
      outcome.out_of_gas = true;
      outcome.gas_left = 0;
    } else {
      outcome.gas_left -= deposit;
      state_->SetCode(new_addr, outcome.output);
    }
  }
  if (!outcome.success) {
    state_->RevertToSnapshot(snapshot);
    logs->resize(log_mark);
  }
  return outcome;
}

Evm::CallOutcome Evm::Interpret(const CallParams& params, const Bytes& code,
                                std::vector<LogEntry>* logs, Tracer* tracer) {
  CallOutcome outcome;
  uint64_t gas = params.gas;
  std::vector<U256> stack;
  stack.reserve(64);
  EvmMemory memory;
  Bytes return_data_buffer;  // last callee's return data
  std::vector<bool> jumpdests = ComputeJumpDests(code);
  const Bytes& calldata = *params.data;

  auto fail_oog = [&]() {
    outcome.success = false;
    outcome.out_of_gas = true;
    outcome.gas_left = 0;
    return outcome;
  };
  auto fail_invalid = [&]() {
    outcome.success = false;
    outcome.out_of_gas = false;
    outcome.gas_left = 0;
    return outcome;
  };

  auto emit = [&](Opcode op, uint32_t pc, std::vector<U256> inputs, std::vector<U256> outputs,
                  Bytes aux = {}) {
    if (tracer != nullptr) {
      TraceStep step;
      step.op = op;
      step.pc = pc;
      step.depth = static_cast<uint16_t>(params.depth);
      step.code_address = params.to;
      step.inputs = std::move(inputs);
      step.outputs = std::move(outputs);
      step.aux = std::move(aux);
      tracer->OnStep(step);
    }
  };

  size_t pc = 0;
  while (pc < code.size()) {
    uint8_t opcode_byte = code[pc];
    const OpcodeInfo& info = GetOpcodeInfo(opcode_byte);
    if (!info.defined) {
      return fail_invalid();
    }
    Opcode op = static_cast<Opcode>(opcode_byte);
    if (stack.size() < static_cast<size_t>(info.pops)) {
      return fail_invalid();
    }
    if (stack.size() - info.pops + info.pushes > 1024) {
      return fail_invalid();
    }
    if (gas < info.base_gas) {
      return fail_oog();
    }
    gas -= info.base_gas;

    auto pop = [&]() {
      U256 v = stack.back();
      stack.pop_back();
      return v;
    };
    auto push = [&](const U256& v) { stack.push_back(v); };
    // Charges dynamic gas; returns false on OOG.
    auto charge = [&](uint64_t amount) {
      if (amount == UINT64_MAX || gas < amount) {
        return false;
      }
      gas -= amount;
      return true;
    };
    auto copy_gas = [&](const U256& size) -> uint64_t {
      if (!size.FitsUint64() || size.AsUint64() > kMaxMemoryBytes) {
        return UINT64_MAX;
      }
      return GasSchedule::kCopyWord * ((size.AsUint64() + 31) / 32);
    };

    uint32_t cur_pc = static_cast<uint32_t>(pc);
    size_t next_pc = pc + 1;

    switch (op) {
      case Opcode::kStop:
        emit(op, cur_pc, {}, {});
        outcome.success = true;
        outcome.gas_left = gas;
        return outcome;

      // ---- Binary arithmetic / comparison / bitwise ----
      case Opcode::kAdd:
      case Opcode::kMul:
      case Opcode::kSub:
      case Opcode::kDiv:
      case Opcode::kSdiv:
      case Opcode::kMod:
      case Opcode::kSmod:
      case Opcode::kExp:
      case Opcode::kSignextend:
      case Opcode::kLt:
      case Opcode::kGt:
      case Opcode::kSlt:
      case Opcode::kSgt:
      case Opcode::kEq:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kByte:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kSar: {
        U256 a = pop();
        U256 b = pop();
        U256 r;
        switch (op) {
          case Opcode::kAdd: r = a + b; break;
          case Opcode::kMul: r = a * b; break;
          case Opcode::kSub: r = a - b; break;
          case Opcode::kDiv: r = a / b; break;
          case Opcode::kSdiv: r = U256::Sdiv(a, b); break;
          case Opcode::kMod: r = a % b; break;
          case Opcode::kSmod: r = U256::Smod(a, b); break;
          case Opcode::kExp: r = U256::Exp(a, b); break;
          case Opcode::kSignextend: r = U256::SignExtend(a, b); break;
          case Opcode::kLt: r = (a < b) ? U256(1) : U256(); break;
          case Opcode::kGt: r = (a > b) ? U256(1) : U256(); break;
          case Opcode::kSlt: r = U256::Slt(a, b) ? U256(1) : U256(); break;
          case Opcode::kSgt: r = U256::Slt(b, a) ? U256(1) : U256(); break;
          case Opcode::kEq: r = (a == b) ? U256(1) : U256(); break;
          case Opcode::kAnd: r = a & b; break;
          case Opcode::kOr: r = a | b; break;
          case Opcode::kXor: r = a ^ b; break;
          case Opcode::kByte: r = U256::ByteAt(a, b); break;
          case Opcode::kShl: r = b << static_cast<unsigned>(
                                     a.FitsUint64() && a.AsUint64() < 256 ? a.AsUint64() : 256);
            break;
          case Opcode::kShr: r = b >> static_cast<unsigned>(
                                     a.FitsUint64() && a.AsUint64() < 256 ? a.AsUint64() : 256);
            break;
          case Opcode::kSar: r = U256::Sar(a, b); break;
          default: break;
        }
        push(r);
        emit(op, cur_pc, {a, b}, {r});
        break;
      }

      case Opcode::kAddmod:
      case Opcode::kMulmod: {
        U256 a = pop();
        U256 b = pop();
        U256 m = pop();
        U256 r = (op == Opcode::kAddmod) ? U256::AddMod(a, b, m) : U256::MulMod(a, b, m);
        push(r);
        emit(op, cur_pc, {a, b, m}, {r});
        break;
      }

      case Opcode::kIszero:
      case Opcode::kNot: {
        U256 a = pop();
        U256 r = (op == Opcode::kIszero) ? (a.IsZero() ? U256(1) : U256()) : ~a;
        push(r);
        emit(op, cur_pc, {a}, {r});
        break;
      }

      case Opcode::kSha3: {
        U256 offset = pop();
        U256 size = pop();
        uint64_t expand = memory.ExpandFor(offset, size);
        if (!charge(expand)) {
          return fail_oog();
        }
        if (!size.FitsUint64() ||
            !charge(GasSchedule::kSha3Word * ((size.AsUint64() + 31) / 32))) {
          return fail_oog();
        }
        Bytes preimage = memory.Slice(offset.AsUint64(), size.AsUint64());
        U256 r = Keccak256(preimage).ToU256();
        push(r);
        emit(op, cur_pc, {offset, size}, {r}, std::move(preimage));
        break;
      }

      // ---- Environment ----
      case Opcode::kAddress: {
        U256 r = params.to.ToU256();
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kBalance: {
        U256 a = pop();
        U256 r = state_->GetBalance(Address::FromU256(a));
        push(r);
        emit(op, cur_pc, {a}, {r});
        break;
      }
      case Opcode::kSelfbalance: {
        U256 r = state_->GetBalance(params.to);
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kOrigin: {
        U256 r = params.origin.ToU256();
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kCaller: {
        U256 r = params.caller.ToU256();
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kCallvalue: {
        push(params.value);
        emit(op, cur_pc, {}, {params.value});
        break;
      }
      case Opcode::kCalldataload: {
        U256 offset = pop();
        U256 r;
        if (offset.FitsUint64() && offset.AsUint64() < calldata.size()) {
          uint8_t word[32] = {0};
          uint64_t off = offset.AsUint64();
          uint64_t n = std::min<uint64_t>(32, calldata.size() - off);
          std::copy(calldata.begin() + static_cast<ptrdiff_t>(off),
                    calldata.begin() + static_cast<ptrdiff_t>(off + n), word);
          r = U256::FromBigEndian(word, 32);
        }
        push(r);
        emit(op, cur_pc, {offset}, {r});
        break;
      }
      case Opcode::kCalldatasize: {
        U256 r(static_cast<uint64_t>(calldata.size()));
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kCalldatacopy:
      case Opcode::kCodecopy:
      case Opcode::kReturndatacopy: {
        U256 dest = pop();
        U256 src_off = pop();
        U256 size = pop();
        uint64_t expand = memory.ExpandFor(dest, size);
        if (!charge(expand) || !charge(copy_gas(size))) {
          return fail_oog();
        }
        const Bytes* source = &calldata;
        if (op == Opcode::kCodecopy) {
          source = &code;
        } else if (op == Opcode::kReturndatacopy) {
          source = &return_data_buffer;
          // RETURNDATACOPY out of bounds is a hard failure per EIP-211.
          if (!src_off.FitsUint64() || !size.FitsUint64() ||
              src_off.AsUint64() + size.AsUint64() > return_data_buffer.size()) {
            return fail_invalid();
          }
        }
        Bytes payload;
        if (!size.IsZero()) {
          uint64_t n = size.AsUint64();
          payload.assign(n, 0);
          if (src_off.FitsUint64() && src_off.AsUint64() < source->size()) {
            uint64_t off = src_off.AsUint64();
            uint64_t copy_n = std::min<uint64_t>(n, source->size() - off);
            std::copy(source->begin() + static_cast<ptrdiff_t>(off),
                      source->begin() + static_cast<ptrdiff_t>(off + copy_n), payload.begin());
          }
          memory.Write(dest.AsUint64(), payload.data(), n);
        }
        emit(op, cur_pc, {dest, src_off, size}, {}, std::move(payload));
        break;
      }
      case Opcode::kCodesize: {
        U256 r(static_cast<uint64_t>(code.size()));
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kGasprice: {
        push(params.gas_price);
        emit(op, cur_pc, {}, {params.gas_price});
        break;
      }
      case Opcode::kReturndatasize: {
        U256 r(static_cast<uint64_t>(return_data_buffer.size()));
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kExtcodesize: {
        U256 a = pop();
        U256 r(static_cast<uint64_t>(state_->GetCode(Address::FromU256(a)).size()));
        push(r);
        emit(op, cur_pc, {a}, {r});
        break;
      }
      case Opcode::kExtcodehash: {
        U256 a = pop();
        U256 r = state_->GetCodeHash(Address::FromU256(a)).ToU256();
        push(r);
        emit(op, cur_pc, {a}, {r});
        break;
      }
      case Opcode::kExtcodecopy: {
        U256 addr_word = pop();
        U256 dest = pop();
        U256 src_off = pop();
        U256 size = pop();
        uint64_t expand = memory.ExpandFor(dest, size);
        if (!charge(expand) || !charge(copy_gas(size))) {
          return fail_oog();
        }
        Bytes ext_code = state_->GetCode(Address::FromU256(addr_word));
        Bytes payload;
        if (!size.IsZero()) {
          uint64_t n = size.AsUint64();
          payload.assign(n, 0);
          if (src_off.FitsUint64() && src_off.AsUint64() < ext_code.size()) {
            uint64_t off = src_off.AsUint64();
            uint64_t copy_n = std::min<uint64_t>(n, ext_code.size() - off);
            std::copy(ext_code.begin() + static_cast<ptrdiff_t>(off),
                      ext_code.begin() + static_cast<ptrdiff_t>(off + copy_n),
                      payload.begin());
          }
          memory.Write(dest.AsUint64(), payload.data(), n);
        }
        emit(op, cur_pc, {addr_word, dest, src_off, size}, {}, std::move(payload));
        break;
      }

      case Opcode::kCreate: {
        if (params.is_static) {
          return fail_invalid();
        }
        U256 value = pop();
        U256 offset = pop();
        U256 size = pop();
        if (!charge(memory.ExpandFor(offset, size))) {
          return fail_oog();
        }
        Bytes init = size.IsZero() ? Bytes{} : memory.Slice(offset.AsUint64(), size.AsUint64());
        uint64_t nonce = state_->GetNonce(params.to);
        state_->SetNonce(params.to, nonce + 1);
        Address new_addr = CreateAddress(params.to, nonce);
        uint64_t callee_gas = gas - gas / 64;
        if (tracer != nullptr) {
          TraceStep step;
          step.op = op;
          step.phase = TracePhase::kCallEnter;
          step.pc = cur_pc;
          step.depth = static_cast<uint16_t>(params.depth);
          step.code_address = params.to;
          step.inputs = {value, offset, size};
          step.aux = init;
          tracer->OnStep(step);
        }
        CallOutcome sub = Create(params.to, new_addr, value, init, callee_gas,
                                 params.depth + 1, params.is_static, params.origin,
                                 params.gas_price, logs, tracer);
        gas -= callee_gas - sub.gas_left;
        return_data_buffer.clear();  // CREATE leaves no return data on success
        U256 result = sub.success ? new_addr.ToU256() : U256();
        push(result);
        if (tracer != nullptr) {
          TraceStep step;
          step.op = op;
          step.phase = TracePhase::kCallExit;
          step.pc = cur_pc;
          step.depth = static_cast<uint16_t>(params.depth);
          step.code_address = params.to;
          step.outputs = {result};
          tracer->OnStep(step);
        }
        break;
      }

      // ---- Block information ----
      case Opcode::kBlockhash: {
        U256 n = pop();
        U256 r;
        if (n.FitsUint64() && n.AsUint64() < block_.number &&
            n.AsUint64() + 256 >= block_.number) {
          r = BlockHash(block_.chain_seed, n.AsUint64()).ToU256();
        }
        push(r);
        emit(op, cur_pc, {n}, {r});
        break;
      }
      case Opcode::kCoinbase: {
        U256 r = block_.coinbase.ToU256();
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kTimestamp: {
        U256 r(block_.timestamp);
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kNumber: {
        U256 r(block_.number);
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kDifficulty: {
        push(block_.difficulty);
        emit(op, cur_pc, {}, {block_.difficulty});
        break;
      }
      case Opcode::kGaslimit: {
        U256 r(block_.gas_limit);
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kChainid: {
        U256 r(block_.chain_id);
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }

      // ---- Stack / memory / storage / flow ----
      case Opcode::kPop: {
        U256 a = pop();
        emit(op, cur_pc, {a}, {});
        break;
      }
      case Opcode::kMload: {
        U256 offset = pop();
        if (!charge(memory.ExpandFor(offset, U256(32)))) {
          return fail_oog();
        }
        U256 r = memory.LoadWord(offset.AsUint64());
        push(r);
        emit(op, cur_pc, {offset}, {r});
        break;
      }
      case Opcode::kMstore: {
        U256 offset = pop();
        U256 value = pop();
        if (!charge(memory.ExpandFor(offset, U256(32)))) {
          return fail_oog();
        }
        memory.StoreWord(offset.AsUint64(), value);
        emit(op, cur_pc, {offset, value}, {});
        break;
      }
      case Opcode::kMstore8: {
        U256 offset = pop();
        U256 value = pop();
        if (!charge(memory.ExpandFor(offset, U256(1)))) {
          return fail_oog();
        }
        memory.StoreByte(offset.AsUint64(), static_cast<uint8_t>(value.AsUint64()));
        emit(op, cur_pc, {offset, value}, {});
        break;
      }
      case Opcode::kSload: {
        U256 key = pop();
        U256 r = state_->GetStorage(params.to, key);
        push(r);
        emit(op, cur_pc, {key}, {r});
        break;
      }
      case Opcode::kSstore: {
        if (params.is_static) {
          return fail_invalid();
        }
        U256 key = pop();
        U256 value = pop();
        state_->SetStorage(params.to, key, value);
        emit(op, cur_pc, {key, value}, {});
        break;
      }
      case Opcode::kJump: {
        U256 target = pop();
        emit(op, cur_pc, {target}, {});
        if (!target.FitsUint64() || target.AsUint64() >= code.size() ||
            !jumpdests[target.AsUint64()]) {
          return fail_invalid();
        }
        next_pc = target.AsUint64();
        break;
      }
      case Opcode::kJumpi: {
        U256 target = pop();
        U256 cond = pop();
        emit(op, cur_pc, {target, cond}, {});
        if (!cond.IsZero()) {
          if (!target.FitsUint64() || target.AsUint64() >= code.size() ||
              !jumpdests[target.AsUint64()]) {
            return fail_invalid();
          }
          next_pc = target.AsUint64();
        }
        break;
      }
      case Opcode::kPc: {
        U256 r(static_cast<uint64_t>(pc));
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kMsize: {
        U256 r(static_cast<uint64_t>(memory.size()));
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kGas: {
        U256 r(gas);
        push(r);
        emit(op, cur_pc, {}, {r});
        break;
      }
      case Opcode::kJumpdest:
        emit(op, cur_pc, {}, {});
        break;

      case Opcode::kLog0:
      case Opcode::kLog1:
      case Opcode::kLog2:
      case Opcode::kLog3:
      case Opcode::kLog4: {
        if (params.is_static) {
          return fail_invalid();
        }
        U256 offset = pop();
        U256 size = pop();
        int topic_count = LogTopics(opcode_byte);
        std::vector<U256> inputs = {offset, size};
        LogEntry entry;
        entry.address = params.to;
        for (int i = 0; i < topic_count; ++i) {
          U256 t = pop();
          entry.topics.push_back(t);
          inputs.push_back(t);
        }
        uint64_t expand = memory.ExpandFor(offset, size);
        if (!charge(expand)) {
          return fail_oog();
        }
        if (!size.FitsUint64() ||
            !charge(GasSchedule::kLogTopic * topic_count +
                    GasSchedule::kLogByte * size.AsUint64())) {
          return fail_oog();
        }
        entry.data = memory.Slice(offset.AsUint64(), size.AsUint64());
        Bytes aux = entry.data;
        logs->push_back(std::move(entry));
        emit(op, cur_pc, std::move(inputs), {}, std::move(aux));
        break;
      }

      case Opcode::kCall:
      case Opcode::kStaticcall:
      case Opcode::kDelegatecall: {
        bool is_static_call = (op == Opcode::kStaticcall);
        bool is_delegate = (op == Opcode::kDelegatecall);
        U256 gas_arg = pop();
        U256 to_word = pop();
        U256 value = (op == Opcode::kCall) ? pop() : U256();
        U256 in_off = pop();
        U256 in_size = pop();
        U256 out_off = pop();
        U256 out_size = pop();
        if (params.is_static && !value.IsZero()) {
          return fail_invalid();
        }
        uint64_t expand_in = memory.ExpandFor(in_off, in_size);
        if (!charge(expand_in)) {
          return fail_oog();
        }
        uint64_t expand_out = memory.ExpandFor(out_off, out_size);
        if (!charge(expand_out)) {
          return fail_oog();
        }
        Bytes input = in_size.IsZero()
                          ? Bytes{}
                          : memory.Slice(in_off.AsUint64(), in_size.AsUint64());
        // 63/64 rule: the callee gets at most all-but-1/64 of remaining gas.
        uint64_t max_forward = gas - gas / 64;
        uint64_t callee_gas =
            gas_arg.FitsUint64() ? std::min(gas_arg.AsUint64(), max_forward) : max_forward;

        std::vector<U256> call_inputs;
        if (op == Opcode::kCall) {
          call_inputs = {gas_arg, to_word, value, in_off, in_size, out_off, out_size};
        } else {
          call_inputs = {gas_arg, to_word, in_off, in_size, out_off, out_size};
        }
        if (tracer != nullptr) {
          TraceStep step;
          step.op = op;
          step.phase = TracePhase::kCallEnter;
          step.pc = cur_pc;
          step.depth = static_cast<uint16_t>(params.depth);
          step.code_address = params.to;
          step.inputs = call_inputs;
          step.aux = input;
          tracer->OnStep(step);
        }

        CallParams sub;
        if (is_delegate) {
          // DELEGATECALL: run the target's code in the current contract's
          // storage context, preserving caller and value.
          sub.caller = params.caller;
          sub.to = params.to;
          sub.code_addr = Address::FromU256(to_word);
          sub.value = params.value;
          sub.transfer_value = false;
        } else {
          sub.caller = params.to;
          sub.to = Address::FromU256(to_word);
          sub.code_addr = sub.to;
          sub.value = value;
        }
        sub.data = &input;
        sub.gas = callee_gas;
        sub.depth = params.depth + 1;
        sub.is_static = params.is_static || is_static_call;
        sub.origin = params.origin;
        sub.gas_price = params.gas_price;
        CallOutcome sub_outcome = Call(sub, logs, tracer);

        gas -= callee_gas - sub_outcome.gas_left;
        return_data_buffer = sub_outcome.output;
        Bytes written;
        if (!out_size.IsZero()) {
          uint64_t n = std::min<uint64_t>(out_size.AsUint64(), sub_outcome.output.size());
          if (n > 0) {
            memory.Write(out_off.AsUint64(), sub_outcome.output.data(), n);
            written.assign(sub_outcome.output.begin(),
                           sub_outcome.output.begin() + static_cast<ptrdiff_t>(n));
          }
        }
        U256 success = sub_outcome.success ? U256(1) : U256();
        push(success);
        if (tracer != nullptr) {
          TraceStep step;
          step.op = op;
          step.phase = TracePhase::kCallExit;
          step.pc = cur_pc;
          step.depth = static_cast<uint16_t>(params.depth);
          step.code_address = params.to;
          step.outputs = {success};
          step.aux = std::move(written);
          tracer->OnStep(step);
        }
        break;
      }

      case Opcode::kReturn:
      case Opcode::kRevert: {
        U256 offset = pop();
        U256 size = pop();
        if (!charge(memory.ExpandFor(offset, size))) {
          return fail_oog();
        }
        Bytes data = size.IsZero() ? Bytes{} : memory.Slice(offset.AsUint64(), size.AsUint64());
        emit(op, cur_pc, {offset, size}, {}, data);
        outcome.success = (op == Opcode::kReturn);
        outcome.gas_left = gas;
        outcome.output = std::move(data);
        return outcome;
      }

      case Opcode::kInvalid:
        return fail_invalid();

      default: {
        if (IsPush(opcode_byte)) {
          int n = PushSize(opcode_byte);
          uint8_t buf[32] = {0};
          for (int i = 0; i < n && pc + 1 + i < code.size(); ++i) {
            buf[i] = code[pc + 1 + i];
          }
          U256 r = U256::FromBigEndian(buf, static_cast<size_t>(n));
          push(r);
          emit(op, cur_pc, {}, {r});
          next_pc = pc + 1 + static_cast<size_t>(n);
          break;
        }
        if (IsDup(opcode_byte)) {
          int n = DupIndex(opcode_byte);
          U256 r = stack[stack.size() - static_cast<size_t>(n)];
          push(r);
          emit(op, cur_pc, {}, {r});
          break;
        }
        if (IsSwap(opcode_byte)) {
          int n = SwapIndex(opcode_byte);
          std::swap(stack[stack.size() - 1], stack[stack.size() - 1 - static_cast<size_t>(n)]);
          emit(op, cur_pc, {}, {});
          break;
        }
        return fail_invalid();
      }
    }
    pc = next_pc;
  }
  // Ran off the end of the code: implicit STOP.
  outcome.success = true;
  outcome.gas_left = gas;
  return outcome;
}

}  // namespace frn
