// The EVM interpreter: a faithful stack-machine executor for the opcode subset
// in opcodes.h, with gas accounting, nested message calls, logs, revert
// semantics and an optional tracing hook. This is the baseline engine whose
// critical-path latency Forerunner's accelerated programs beat.
#ifndef SRC_EVM_EVM_H_
#define SRC_EVM_EVM_H_

#include <vector>

#include "src/evm/context.h"
#include "src/evm/tracer.h"
#include "src/evm/world_state.h"

namespace frn {

class Evm {
 public:
  Evm(WorldState* state, const BlockContext& block) : state_(state), block_(block) {}

  // Executes a full transaction: nonce/balance checks, gas purchase, the
  // top-level message call, gas refund and coinbase fee payment. State
  // changes of failed calls are reverted; fee transfers always apply (except
  // for kBadNonce / kInsufficientBalance, which are inclusion errors that
  // consume nothing, mirroring invalid-transaction handling).
  ExecResult ExecuteTransaction(const Transaction& tx, Tracer* tracer = nullptr);

  WorldState* state() { return state_; }
  const BlockContext& block() const { return block_; }

  // Deterministic BLOCKHASH function shared by interpreter and S-EVM.
  static Hash BlockHash(uint64_t chain_seed, uint64_t number);

  // The address a contract created by (creator, nonce) deploys at:
  // keccak(rlp([creator, nonce]))[12:].
  static Address CreateAddress(const Address& creator, uint64_t nonce);

 private:
  struct CallParams {
    Address caller;
    Address to;         // storage/self context (differs from code for DELEGATECALL)
    Address code_addr;  // whose code runs
    U256 value;
    // DELEGATECALL inherits the value without moving balances.
    bool transfer_value = true;
    const Bytes* data = nullptr;
    uint64_t gas = 0;
    int depth = 0;
    bool is_static = false;
    Address origin;
    U256 gas_price;
  };

  struct CallOutcome {
    bool success = false;
    bool out_of_gas = false;
    uint64_t gas_left = 0;
    Bytes output;
  };

  CallOutcome Call(const CallParams& params, std::vector<LogEntry>* logs, Tracer* tracer);
  CallOutcome Interpret(const CallParams& params, const Bytes& code,
                        std::vector<LogEntry>* logs, Tracer* tracer);
  // Runs `init` as creation code for `new_addr` and installs the returned
  // runtime code on success (charging the per-byte deposit cost).
  CallOutcome Create(const Address& creator, const Address& new_addr, const U256& value,
                     const Bytes& init, uint64_t gas, int depth, bool is_static,
                     const Address& origin, const U256& gas_price,
                     std::vector<LogEntry>* logs, Tracer* tracer);

  WorldState* state_;
  BlockContext block_;
};

}  // namespace frn

#endif  // SRC_EVM_EVM_H_
