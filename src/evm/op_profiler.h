// Fine-grained interpreter-loop profiler, attached to the EVM through the
// existing Tracer hook. Counts executed opcodes and CALL-family entries and
// tracks the maximum call depth, flushing the totals into the metrics
// registry when detached. This instrumentation observes every single
// instruction, which is far too hot for release binaries — the attach site in
// Accelerator::RunEvm is compiled only under -DFRN_TRACING=ON (see the
// top-level CMakeLists.txt); this header itself is always valid to include.
#ifndef SRC_EVM_OP_PROFILER_H_
#define SRC_EVM_OP_PROFILER_H_

#include <cstdint>

#include "src/evm/tracer.h"
// Upward include (evm → obs), suppressed: the profiler's whole job is to
// flush counts into the metrics registry, and its only attach site
// (Accelerator::RunEvm, a layer that may include obs) is compiled exclusively
// under -DFRN_TRACING=ON — default builds never instantiate this class, so
// the evm layer's object code carries no obs dependency.
#include "src/obs/registry.h"  // frn:allow(layering)

namespace frn {

class EvmOpProfiler : public Tracer {
 public:
  EvmOpProfiler() = default;
  ~EvmOpProfiler() override { Flush(); }

  void OnStep(const TraceStep& step) override {
    switch (step.phase) {
      case TracePhase::kExec:
        ++ops_;
        break;
      case TracePhase::kCallEnter:
        ++ops_;
        ++calls_;
        // The callee frame runs one deeper than the frame issuing the CALL.
        if (step.depth + 1u > max_depth_) {
          max_depth_ = step.depth + 1u;
        }
        break;
      case TracePhase::kCallExit:
        break;  // the matching kCallEnter already counted the instruction
    }
  }

  uint64_t ops() const { return ops_; }
  uint64_t calls() const { return calls_; }
  uint32_t max_depth() const { return max_depth_; }

  // Adds the accumulated counts to the registry (idempotent; also run by the
  // destructor). Counting locally and flushing once keeps the per-step cost
  // to plain increments on profiler-private fields.
  void Flush() {
    if (flushed_) {
      return;
    }
    flushed_ = true;
    static Counter* ops_counter = MetricsRegistry::Global().GetCounter("evm.ops");
    static Counter* calls_counter = MetricsRegistry::Global().GetCounter("evm.calls");
    static Gauge* depth_gauge = MetricsRegistry::Global().GetGauge("evm.max_call_depth");
    ops_counter->Add(ops_);
    calls_counter->Add(calls_);
    depth_gauge->SetMax(static_cast<double>(max_depth_));
  }

 private:
  uint64_t ops_ = 0;
  uint64_t calls_ = 0;
  uint32_t max_depth_ = 0;
  bool flushed_ = false;
};

}  // namespace frn

#endif  // SRC_EVM_OP_PROFILER_H_
