#include "src/evm/opcodes.h"

#include <array>

namespace frn {

namespace {

// Gas tiers loosely following the Istanbul schedule; see opcodes.h for why
// value-dependent costs (EXP by exponent width, SSTORE by prior value) are
// flattened to constants.
constexpr uint32_t kZero = 0;
constexpr uint32_t kBase = 2;
constexpr uint32_t kVeryLow = 3;
constexpr uint32_t kLow = 5;
constexpr uint32_t kMid = 8;
constexpr uint32_t kHigh = 10;
constexpr uint32_t kSha3 = 30;
constexpr uint32_t kBalanceGas = 700;
constexpr uint32_t kSloadGas = 800;
constexpr uint32_t kSstoreGas = 20000;
constexpr uint32_t kCallGas = 700;
constexpr uint32_t kLogBase = 375;
constexpr uint32_t kExpGas = 60;
constexpr uint32_t kBlockhashGas = 20;

std::array<OpcodeInfo, 256> BuildTable() {
  std::array<OpcodeInfo, 256> t{};
  auto def = [&](Opcode op, std::string_view name, int8_t pops, int8_t pushes, uint32_t gas) {
    t[static_cast<uint8_t>(op)] = OpcodeInfo{name, pops, pushes, gas, true};
  };
  def(Opcode::kStop, "STOP", 0, 0, kZero);
  def(Opcode::kAdd, "ADD", 2, 1, kVeryLow);
  def(Opcode::kMul, "MUL", 2, 1, kLow);
  def(Opcode::kSub, "SUB", 2, 1, kVeryLow);
  def(Opcode::kDiv, "DIV", 2, 1, kLow);
  def(Opcode::kSdiv, "SDIV", 2, 1, kLow);
  def(Opcode::kMod, "MOD", 2, 1, kLow);
  def(Opcode::kSmod, "SMOD", 2, 1, kLow);
  def(Opcode::kAddmod, "ADDMOD", 3, 1, kMid);
  def(Opcode::kMulmod, "MULMOD", 3, 1, kMid);
  def(Opcode::kExp, "EXP", 2, 1, kExpGas);
  def(Opcode::kSignextend, "SIGNEXTEND", 2, 1, kLow);
  def(Opcode::kLt, "LT", 2, 1, kVeryLow);
  def(Opcode::kGt, "GT", 2, 1, kVeryLow);
  def(Opcode::kSlt, "SLT", 2, 1, kVeryLow);
  def(Opcode::kSgt, "SGT", 2, 1, kVeryLow);
  def(Opcode::kEq, "EQ", 2, 1, kVeryLow);
  def(Opcode::kIszero, "ISZERO", 1, 1, kVeryLow);
  def(Opcode::kAnd, "AND", 2, 1, kVeryLow);
  def(Opcode::kOr, "OR", 2, 1, kVeryLow);
  def(Opcode::kXor, "XOR", 2, 1, kVeryLow);
  def(Opcode::kNot, "NOT", 1, 1, kVeryLow);
  def(Opcode::kByte, "BYTE", 2, 1, kVeryLow);
  def(Opcode::kShl, "SHL", 2, 1, kVeryLow);
  def(Opcode::kShr, "SHR", 2, 1, kVeryLow);
  def(Opcode::kSar, "SAR", 2, 1, kVeryLow);
  def(Opcode::kSha3, "SHA3", 2, 1, kSha3);
  def(Opcode::kAddress, "ADDRESS", 0, 1, kBase);
  def(Opcode::kBalance, "BALANCE", 1, 1, kBalanceGas);
  def(Opcode::kOrigin, "ORIGIN", 0, 1, kBase);
  def(Opcode::kCaller, "CALLER", 0, 1, kBase);
  def(Opcode::kCallvalue, "CALLVALUE", 0, 1, kBase);
  def(Opcode::kCalldataload, "CALLDATALOAD", 1, 1, kVeryLow);
  def(Opcode::kCalldatasize, "CALLDATASIZE", 0, 1, kBase);
  def(Opcode::kCalldatacopy, "CALLDATACOPY", 3, 0, kVeryLow);
  def(Opcode::kCodesize, "CODESIZE", 0, 1, kBase);
  def(Opcode::kCodecopy, "CODECOPY", 3, 0, kVeryLow);
  def(Opcode::kGasprice, "GASPRICE", 0, 1, kBase);
  def(Opcode::kReturndatasize, "RETURNDATASIZE", 0, 1, kBase);
  def(Opcode::kReturndatacopy, "RETURNDATACOPY", 3, 0, kVeryLow);
  def(Opcode::kBlockhash, "BLOCKHASH", 1, 1, kBlockhashGas);
  def(Opcode::kCoinbase, "COINBASE", 0, 1, kBase);
  def(Opcode::kTimestamp, "TIMESTAMP", 0, 1, kBase);
  def(Opcode::kNumber, "NUMBER", 0, 1, kBase);
  def(Opcode::kDifficulty, "DIFFICULTY", 0, 1, kBase);
  def(Opcode::kGaslimit, "GASLIMIT", 0, 1, kBase);
  def(Opcode::kChainid, "CHAINID", 0, 1, kBase);
  def(Opcode::kSelfbalance, "SELFBALANCE", 0, 1, kLow);
  def(Opcode::kPop, "POP", 1, 0, kBase);
  def(Opcode::kMload, "MLOAD", 1, 1, kVeryLow);
  def(Opcode::kMstore, "MSTORE", 2, 0, kVeryLow);
  def(Opcode::kMstore8, "MSTORE8", 2, 0, kVeryLow);
  def(Opcode::kSload, "SLOAD", 1, 1, kSloadGas);
  def(Opcode::kSstore, "SSTORE", 2, 0, kSstoreGas);
  def(Opcode::kJump, "JUMP", 1, 0, kMid);
  def(Opcode::kJumpi, "JUMPI", 2, 0, kHigh);
  def(Opcode::kPc, "PC", 0, 1, kBase);
  def(Opcode::kMsize, "MSIZE", 0, 1, kBase);
  def(Opcode::kGas, "GAS", 0, 1, kBase);
  def(Opcode::kJumpdest, "JUMPDEST", 0, 0, 1);
  static constexpr std::string_view kPushNames[32] = {
      "PUSH1",  "PUSH2",  "PUSH3",  "PUSH4",  "PUSH5",  "PUSH6",  "PUSH7",  "PUSH8",
      "PUSH9",  "PUSH10", "PUSH11", "PUSH12", "PUSH13", "PUSH14", "PUSH15", "PUSH16",
      "PUSH17", "PUSH18", "PUSH19", "PUSH20", "PUSH21", "PUSH22", "PUSH23", "PUSH24",
      "PUSH25", "PUSH26", "PUSH27", "PUSH28", "PUSH29", "PUSH30", "PUSH31", "PUSH32"};
  for (int i = 0; i < 32; ++i) {
    t[0x60 + i] = OpcodeInfo{kPushNames[i], 0, 1, kVeryLow, true};
  }
  static constexpr std::string_view kDupNames[16] = {
      "DUP1", "DUP2",  "DUP3",  "DUP4",  "DUP5",  "DUP6",  "DUP7",  "DUP8",
      "DUP9", "DUP10", "DUP11", "DUP12", "DUP13", "DUP14", "DUP15", "DUP16"};
  static constexpr std::string_view kSwapNames[16] = {
      "SWAP1", "SWAP2",  "SWAP3",  "SWAP4",  "SWAP5",  "SWAP6",  "SWAP7",  "SWAP8",
      "SWAP9", "SWAP10", "SWAP11", "SWAP12", "SWAP13", "SWAP14", "SWAP15", "SWAP16"};
  for (int i = 0; i < 16; ++i) {
    // DUPn peeks n items and pushes one more; SWAPn touches n+1 items in place.
    t[0x80 + i] = OpcodeInfo{kDupNames[i], static_cast<int8_t>(i + 1),
                             static_cast<int8_t>(i + 2), kVeryLow, true};
    t[0x90 + i] = OpcodeInfo{kSwapNames[i], static_cast<int8_t>(i + 2),
                             static_cast<int8_t>(i + 2), kVeryLow, true};
  }
  static constexpr std::string_view kLogNames[5] = {"LOG0", "LOG1", "LOG2", "LOG3", "LOG4"};
  for (int i = 0; i <= 4; ++i) {
    t[0xa0 + i] = OpcodeInfo{kLogNames[i], static_cast<int8_t>(2 + i), 0, kLogBase, true};
  }
  def(Opcode::kExtcodesize, "EXTCODESIZE", 1, 1, kBalanceGas);
  def(Opcode::kExtcodecopy, "EXTCODECOPY", 4, 0, kBalanceGas);
  def(Opcode::kExtcodehash, "EXTCODEHASH", 1, 1, kBalanceGas);
  def(Opcode::kCreate, "CREATE", 3, 1, 32000);
  def(Opcode::kCall, "CALL", 7, 1, kCallGas);
  def(Opcode::kDelegatecall, "DELEGATECALL", 6, 1, kCallGas);
  def(Opcode::kStaticcall, "STATICCALL", 6, 1, kCallGas);
  def(Opcode::kReturn, "RETURN", 2, 0, kZero);
  def(Opcode::kRevert, "REVERT", 2, 0, kZero);
  def(Opcode::kInvalid, "INVALID", 0, 0, kZero);
  return t;
}

const std::array<OpcodeInfo, 256>& Table() {
  static const std::array<OpcodeInfo, 256> kTable = BuildTable();
  return kTable;
}

}  // namespace

const OpcodeInfo& GetOpcodeInfo(uint8_t opcode) { return Table()[opcode]; }

}  // namespace frn
