// Abstract world-state surface the execution layers program against. The EVM
// interpreter, the S-EVM evaluator (src/core) and the contract deploy helpers
// (src/contracts) sit *below* the state layer in the include DAG enforced by
// tools/analyze.py (`common → crypto → {evm,core,easm,contracts} → obs →
// state → {dice,forerunner,replay}`), so they cannot name StateDb directly.
// They call through this interface instead; StateDb (src/state/statedb.h)
// is the one production implementation, and the state layer includes this
// header downward.
//
// The surface is exactly the journaled account/storage operations transaction
// execution needs. Commit/prefetch/write-set extraction are deliberately
// absent: those are state-layer lifecycle concerns the execution layers must
// not reach into.
#ifndef SRC_EVM_WORLD_STATE_H_
#define SRC_EVM_WORLD_STATE_H_

#include <cstdint>

#include "src/common/types.h"

namespace frn {

class WorldState {
 public:
  virtual ~WorldState() = default;

  // ---- Account access ----
  virtual bool Exists(const Address& addr) = 0;
  virtual void CreateAccount(const Address& addr) = 0;
  virtual U256 GetBalance(const Address& addr) = 0;
  virtual void SetBalance(const Address& addr, const U256& value) = 0;
  virtual void AddBalance(const Address& addr, const U256& value) = 0;
  // Returns false on insufficient balance (no change applied).
  virtual bool SubBalance(const Address& addr, const U256& value) = 0;
  virtual uint64_t GetNonce(const Address& addr) = 0;
  virtual void SetNonce(const Address& addr, uint64_t nonce) = 0;
  virtual Bytes GetCode(const Address& addr) = 0;
  virtual Hash GetCodeHash(const Address& addr) = 0;
  virtual void SetCode(const Address& addr, const Bytes& code) = 0;

  // ---- Storage access ----
  virtual U256 GetStorage(const Address& addr, const U256& key) = 0;
  virtual void SetStorage(const Address& addr, const U256& key, const U256& value) = 0;
  // The committed (pre-transaction) value, used by the SSTORE gas rules.
  virtual U256 GetCommittedStorage(const Address& addr, const U256& key) = 0;

  // ---- Journal ----
  // Returns a snapshot id; RevertToSnapshot undoes everything after it.
  virtual int Snapshot() = 0;
  virtual void RevertToSnapshot(int id) = 0;
};

}  // namespace frn

#endif  // SRC_EVM_WORLD_STATE_H_
