// Execution tracing interface. The instrumented EVM (paper Fig. 6: "traced
// pre-execution") reports every executed instruction with its popped inputs,
// pushed outputs and any memory payload, which is exactly the information the
// S-EVM translator needs to rebuild the computation in register form.
#ifndef SRC_EVM_TRACER_H_
#define SRC_EVM_TRACER_H_

#include <vector>

#include "src/evm/context.h"
#include "src/evm/opcodes.h"

namespace frn {

// Distinguishes the two halves of a call-like instruction: the enter record
// carries the popped arguments (and the input payload) before the callee runs;
// the exit record carries the pushed success flag after it returns.
enum class TracePhase : uint8_t { kExec = 0, kCallEnter, kCallExit };

struct TraceStep {
  Opcode op = Opcode::kStop;
  TracePhase phase = TracePhase::kExec;
  uint32_t pc = 0;
  uint16_t depth = 0;          // call depth, 0 = top frame
  Address code_address;        // the contract whose code is executing
  std::vector<U256> inputs;    // popped operands, inputs[0] was top-of-stack
  std::vector<U256> outputs;   // pushed results
  Bytes aux;                   // SHA3 preimage, LOG/RETURN data, copy payloads
};

class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void OnStep(const TraceStep& step) = 0;
};

// Simple tracer that appends every step to a vector (tests, Figure 7 demo).
class RecordingTracer : public Tracer {
 public:
  void OnStep(const TraceStep& step) override { steps_.push_back(step); }
  const std::vector<TraceStep>& steps() const { return steps_; }

 private:
  std::vector<TraceStep> steps_;
};

}  // namespace frn

#endif  // SRC_EVM_TRACER_H_
