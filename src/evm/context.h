// Transaction and execution-context types. A transaction's execution context
// (paper §4.2) is the block header it lands in plus the world state produced
// by all preceding transactions; BlockContext carries the header part.
#ifndef SRC_EVM_CONTEXT_H_
#define SRC_EVM_CONTEXT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/types.h"

namespace frn {

struct BlockContext {
  uint64_t number = 0;
  uint64_t timestamp = 0;
  Address coinbase;
  uint64_t gas_limit = 15'000'000;
  U256 difficulty = U256(2'500'000'000'000'000ULL);
  uint64_t chain_id = 1;
  // Seed for the deterministic BLOCKHASH(n) function of this chain.
  uint64_t chain_seed = 0x466f726572756eULL;

  bool operator==(const BlockContext& o) const {
    return number == o.number && timestamp == o.timestamp && coinbase == o.coinbase &&
           gas_limit == o.gas_limit && difficulty == o.difficulty && chain_id == o.chain_id &&
           chain_seed == o.chain_seed;
  }
};

struct Transaction {
  uint64_t id = 0;  // simulation-unique identifier (stands in for the tx hash)
  Address sender;
  Address to;
  U256 value;
  Bytes data;
  uint64_t gas_limit = 1'000'000;
  U256 gas_price = U256(1'000'000'000);
  uint64_t nonce = 0;

  // Intrinsic gas: base cost plus calldata byte costs (Yellow Paper g_txdata*).
  uint64_t IntrinsicGas() const;
};

struct LogEntry {
  Address address;
  std::vector<U256> topics;
  Bytes data;

  bool operator==(const LogEntry& o) const {
    return address == o.address && topics == o.topics && data == o.data;
  }
};

enum class ExecStatus : uint8_t {
  kSuccess = 0,
  kReverted,            // explicit REVERT at the top frame
  kOutOfGas,
  kInvalidInstruction,  // bad jump, stack under/overflow, undefined opcode
  kBadNonce,
  kInsufficientBalance,
};

const char* ExecStatusName(ExecStatus status);

struct ExecResult {
  ExecStatus status = ExecStatus::kSuccess;
  uint64_t gas_used = 0;
  Bytes return_data;
  std::vector<LogEntry> logs;

  bool ok() const { return status == ExecStatus::kSuccess; }
  // Equality over the externally observable outcome (used by the AP-vs-EVM
  // equivalence tests; state equality is checked via the Merkle root).
  bool operator==(const ExecResult& o) const {
    return status == o.status && gas_used == o.gas_used && return_data == o.return_data &&
           logs == o.logs;
  }
};

}  // namespace frn

#endif  // SRC_EVM_CONTEXT_H_
