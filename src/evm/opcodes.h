// EVM opcode set and static metadata (stack arity, gas tier). The subset
// implemented covers the instruction categories Forerunner's S-EVM supports
// (paper §4.3): arithmetic, comparison, bitwise logic, SHA3, environmental
// information, block information, storage, logging and system, plus the
// stack/memory/control instructions that S-EVM later eliminates.
#ifndef SRC_EVM_OPCODES_H_
#define SRC_EVM_OPCODES_H_

#include <cstdint>
#include <string_view>

namespace frn {

enum class Opcode : uint8_t {
  kStop = 0x00,
  kAdd = 0x01,
  kMul = 0x02,
  kSub = 0x03,
  kDiv = 0x04,
  kSdiv = 0x05,
  kMod = 0x06,
  kSmod = 0x07,
  kAddmod = 0x08,
  kMulmod = 0x09,
  kExp = 0x0a,
  kSignextend = 0x0b,
  kLt = 0x10,
  kGt = 0x11,
  kSlt = 0x12,
  kSgt = 0x13,
  kEq = 0x14,
  kIszero = 0x15,
  kAnd = 0x16,
  kOr = 0x17,
  kXor = 0x18,
  kNot = 0x19,
  kByte = 0x1a,
  kShl = 0x1b,
  kShr = 0x1c,
  kSar = 0x1d,
  kSha3 = 0x20,
  kAddress = 0x30,
  kBalance = 0x31,
  kOrigin = 0x32,
  kCaller = 0x33,
  kCallvalue = 0x34,
  kCalldataload = 0x35,
  kCalldatasize = 0x36,
  kCalldatacopy = 0x37,
  kCodesize = 0x38,
  kCodecopy = 0x39,
  kGasprice = 0x3a,
  kExtcodesize = 0x3b,
  kExtcodecopy = 0x3c,
  kReturndatasize = 0x3d,
  kReturndatacopy = 0x3e,
  kExtcodehash = 0x3f,
  kBlockhash = 0x40,
  kCoinbase = 0x41,
  kTimestamp = 0x42,
  kNumber = 0x43,
  kDifficulty = 0x44,
  kGaslimit = 0x45,
  kChainid = 0x46,
  kSelfbalance = 0x47,
  kPop = 0x50,
  kMload = 0x51,
  kMstore = 0x52,
  kMstore8 = 0x53,
  kSload = 0x54,
  kSstore = 0x55,
  kJump = 0x56,
  kJumpi = 0x57,
  kPc = 0x58,
  kMsize = 0x59,
  kGas = 0x5a,
  kJumpdest = 0x5b,
  kPush1 = 0x60,
  // ... PUSH2..PUSH32 are 0x61..0x7f
  kPush32 = 0x7f,
  kDup1 = 0x80,
  kDup16 = 0x8f,
  kSwap1 = 0x90,
  kSwap16 = 0x9f,
  kLog0 = 0xa0,
  kLog1 = 0xa1,
  kLog2 = 0xa2,
  kLog3 = 0xa3,
  kLog4 = 0xa4,
  kCreate = 0xf0,
  kCall = 0xf1,
  kReturn = 0xf3,
  kDelegatecall = 0xf4,
  kStaticcall = 0xfa,
  kRevert = 0xfd,
  kInvalid = 0xfe,
};

struct OpcodeInfo {
  std::string_view name;
  int8_t pops = 0;          // stack items consumed
  int8_t pushes = 0;        // stack items produced
  uint32_t base_gas = 0;    // static gas component
  bool defined = false;
};

// Static metadata for an opcode byte; undefined bytes have defined == false.
const OpcodeInfo& GetOpcodeInfo(uint8_t opcode);
inline const OpcodeInfo& GetOpcodeInfo(Opcode op) {
  return GetOpcodeInfo(static_cast<uint8_t>(op));
}
inline std::string_view OpcodeName(Opcode op) { return GetOpcodeInfo(op).name; }

inline bool IsPush(uint8_t op) { return op >= 0x60 && op <= 0x7f; }
inline int PushSize(uint8_t op) { return op - 0x5f; }
inline bool IsDup(uint8_t op) { return op >= 0x80 && op <= 0x8f; }
inline int DupIndex(uint8_t op) { return op - 0x7f; }  // DUP1 -> 1
inline bool IsSwap(uint8_t op) { return op >= 0x90 && op <= 0x9f; }
inline int SwapIndex(uint8_t op) { return op - 0x8f; }  // SWAP1 -> 1
inline bool IsLog(uint8_t op) { return op >= 0xa0 && op <= 0xa4; }
inline int LogTopics(uint8_t op) { return op - 0xa0; }

// Gas schedule constants. The schedule is intentionally a *deterministic*
// function of the executed instruction sequence and the (data-guarded) memory
// sizes, so that under CD-Equiv the total gas of a transaction is a constant
// of the trace (see DESIGN.md §4.3 note on gas guards).
struct GasSchedule {
  static constexpr uint64_t kTxBase = 21000;
  static constexpr uint64_t kTxDataZeroByte = 4;
  static constexpr uint64_t kTxDataNonZeroByte = 16;
  static constexpr uint64_t kSha3Word = 6;
  static constexpr uint64_t kCopyWord = 3;
  static constexpr uint64_t kLogByte = 8;
  static constexpr uint64_t kLogTopic = 375;
  static constexpr uint64_t kMemoryWord = 3;
  static constexpr uint64_t kQuadCoeffDiv = 512;
  static constexpr uint64_t kCallStipendDepth = 64;  // max call depth
};

}  // namespace frn

#endif  // SRC_EVM_OPCODES_H_
