// A small EVM assembler/disassembler so that the repository's contracts
// (PriceFeed, ERC-20, AMM, ...) can be written as readable mnemonic listings
// instead of raw hex. Replaces the Solidity compiler in the paper's pipeline.
//
// Syntax, one statement per line:
//   label:              defines `label` at the current position (emits JUMPDEST)
//   PUSH 123            auto-sized push of a decimal constant
//   PUSH 0x1f           auto-sized push of a hex constant
//   PUSH @label         2-byte push of a label address
//   ADD / MLOAD / ...   any plain mnemonic
//   ; comment           (also //)
#ifndef SRC_EASM_EASM_H_
#define SRC_EASM_EASM_H_

#include <stdexcept>
#include <string>

#include "src/common/types.h"

namespace frn {

class AsmError : public std::runtime_error {
 public:
  explicit AsmError(const std::string& what) : std::runtime_error(what) {}
};

// Assembles a mnemonic listing into bytecode; throws AsmError on bad input.
Bytes Assemble(const std::string& source);

// Renders bytecode as one mnemonic per line (inverse view, for debugging and
// the Figure 7 trace listing).
std::string Disassemble(const Bytes& code);

}  // namespace frn

#endif  // SRC_EASM_EASM_H_
