#include "src/easm/easm.h"

#include <map>
#include <sstream>
#include <vector>

#include "src/common/u256.h"
#include "src/evm/opcodes.h"

namespace frn {

namespace {

struct Statement {
  std::string mnemonic;   // empty for pure label lines
  std::string operand;    // PUSH operand text
  std::string label_def;  // label defined on this line
  int line = 0;
};

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string StripComment(const std::string& line) {
  size_t semi = line.find(';');
  size_t slashes = line.find("//");
  size_t cut = std::min(semi == std::string::npos ? line.size() : semi,
                        slashes == std::string::npos ? line.size() : slashes);
  return line.substr(0, cut);
}

std::vector<Statement> Parse(const std::string& source) {
  std::vector<Statement> out;
  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = Trim(StripComment(raw));
    if (line.empty()) {
      continue;
    }
    Statement st;
    st.line = line_no;
    size_t colon = line.find(':');
    if (colon != std::string::npos) {
      st.label_def = Trim(line.substr(0, colon));
      line = Trim(line.substr(colon + 1));
      if (st.label_def.empty()) {
        throw AsmError("line " + std::to_string(line_no) + ": empty label");
      }
    }
    if (!line.empty()) {
      size_t space = line.find_first_of(" \t");
      if (space == std::string::npos) {
        st.mnemonic = line;
      } else {
        st.mnemonic = line.substr(0, space);
        st.operand = Trim(line.substr(space + 1));
      }
      for (auto& c : st.mnemonic) {
        c = static_cast<char>(toupper(c));
      }
    }
    out.push_back(std::move(st));
  }
  return out;
}

// Returns the opcode byte for a plain mnemonic, or -1.
int LookupMnemonic(const std::string& name) {
  for (int b = 0; b < 256; ++b) {
    const OpcodeInfo& info = GetOpcodeInfo(static_cast<uint8_t>(b));
    if (info.defined && info.name == name) {
      return b;
    }
  }
  return -1;
}

// Minimal byte width needed to encode `v` in a PUSH (at least 1).
int PushWidth(const U256& v) {
  int bits = v.BitLength();
  int bytes = (bits + 7) / 8;
  return bytes == 0 ? 1 : bytes;
}

}  // namespace

Bytes Assemble(const std::string& source) {
  std::vector<Statement> statements = Parse(source);

  // Pass 1: compute statement sizes and label offsets. Label pushes are fixed
  // at 2 bytes (PUSH2) so sizes never depend on label values.
  std::map<std::string, size_t> labels;
  size_t offset = 0;
  std::vector<size_t> sizes(statements.size(), 0);
  for (size_t i = 0; i < statements.size(); ++i) {
    const Statement& st = statements[i];
    if (!st.label_def.empty()) {
      if (labels.contains(st.label_def)) {
        throw AsmError("line " + std::to_string(st.line) + ": duplicate label " + st.label_def);
      }
      labels[st.label_def] = offset;
      offset += 1;  // implicit JUMPDEST
      sizes[i] += 1;
    }
    if (st.mnemonic.empty()) {
      continue;
    }
    size_t sz;
    if (st.mnemonic == "PUSH") {
      if (st.operand.empty()) {
        throw AsmError("line " + std::to_string(st.line) + ": PUSH needs an operand");
      }
      if (st.operand[0] == '@') {
        sz = 3;  // PUSH2 + 2 bytes
      } else {
        U256 v = (st.operand.rfind("0x", 0) == 0) ? U256::FromHex(st.operand)
                                                  : U256::FromDec(st.operand);
        sz = 1 + static_cast<size_t>(PushWidth(v));
      }
    } else if (st.mnemonic.rfind("PUSH", 0) == 0 && st.mnemonic.size() > 4) {
      int n = std::stoi(st.mnemonic.substr(4));
      if (n < 1 || n > 32) {
        throw AsmError("line " + std::to_string(st.line) + ": bad push width");
      }
      sz = 1 + static_cast<size_t>(n);
    } else {
      if (LookupMnemonic(st.mnemonic) < 0) {
        throw AsmError("line " + std::to_string(st.line) + ": unknown mnemonic " + st.mnemonic);
      }
      sz = 1;
    }
    sizes[i] += sz;
    offset += sz;
  }

  // Pass 2: emit bytes.
  Bytes code;
  code.reserve(offset);
  for (const Statement& st : statements) {
    if (!st.label_def.empty()) {
      code.push_back(static_cast<uint8_t>(Opcode::kJumpdest));
    }
    if (st.mnemonic.empty()) {
      continue;
    }
    if (st.mnemonic == "PUSH" || (st.mnemonic.rfind("PUSH", 0) == 0 && st.mnemonic.size() > 4)) {
      int width;
      U256 value;
      if (st.operand.empty()) {
        throw AsmError("line " + std::to_string(st.line) + ": PUSH needs an operand");
      }
      if (st.operand[0] == '@') {
        std::string name = st.operand.substr(1);
        auto it = labels.find(name);
        if (it == labels.end()) {
          throw AsmError("line " + std::to_string(st.line) + ": unknown label " + name);
        }
        value = U256(static_cast<uint64_t>(it->second));
        width = 2;
      } else {
        value = (st.operand.rfind("0x", 0) == 0) ? U256::FromHex(st.operand)
                                                 : U256::FromDec(st.operand);
        width = (st.mnemonic == "PUSH") ? PushWidth(value)
                                        : std::stoi(st.mnemonic.substr(4));
        if (PushWidth(value) > width) {
          throw AsmError("line " + std::to_string(st.line) + ": operand too wide for " +
                         st.mnemonic);
        }
      }
      code.push_back(static_cast<uint8_t>(0x5f + width));
      auto be = value.ToBigEndian();
      for (int i = 32 - width; i < 32; ++i) {
        code.push_back(be[static_cast<size_t>(i)]);
      }
    } else {
      code.push_back(static_cast<uint8_t>(LookupMnemonic(st.mnemonic)));
    }
  }
  return code;
}

std::string Disassemble(const Bytes& code) {
  std::ostringstream out;
  for (size_t pc = 0; pc < code.size(); ++pc) {
    uint8_t b = code[pc];
    const OpcodeInfo& info = GetOpcodeInfo(b);
    out << pc << ": ";
    if (!info.defined) {
      out << "UNDEFINED(0x" << std::hex << static_cast<int>(b) << std::dec << ")\n";
      continue;
    }
    out << info.name;
    if (IsPush(b)) {
      int n = PushSize(b);
      uint8_t buf[32] = {0};
      for (int i = 0; i < n && pc + 1 + static_cast<size_t>(i) < code.size(); ++i) {
        buf[i] = code[pc + 1 + static_cast<size_t>(i)];
      }
      out << " " << U256::FromBigEndian(buf, static_cast<size_t>(n)).ToHex();
      pc += static_cast<size_t>(n);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace frn
