// Small statistics toolkit used by the evaluation harness: histograms,
// reverse CDFs and weighted percentages. Timing lives in the shared clock
// utility (src/common/clock.h), re-exported here for existing includers.
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"

namespace frn {

// Accumulates samples; provides mean / percentile / weighted aggregation.
class Samples {
 public:
  void Add(double value, double weight = 1.0) {
    values_.push_back(value);
    weights_.push_back(weight);
    sum_ += value;
    weighted_sum_ += value * weight;
    weight_sum_ += weight;
  }
  size_t count() const { return values_.size(); }
  double sum() const { return sum_; }
  double weight_sum() const { return weight_sum_; }
  double Mean() const { return values_.empty() ? 0.0 : sum_ / values_.size(); }
  double WeightedMean() const { return weight_sum_ == 0 ? 0.0 : weighted_sum_ / weight_sum_; }
  double Percentile(double p) const;
  double Max() const {
    return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
  }
  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> values_;
  std::vector<double> weights_;
  double sum_ = 0;
  double weighted_sum_ = 0;
  double weight_sum_ = 0;
};

// Fixed-bucket histogram over [0, bucket_width * n_buckets), with overflow.
class Histogram {
 public:
  Histogram(double bucket_width, size_t n_buckets)
      : bucket_width_(bucket_width), counts_(n_buckets + 1, 0) {}
  void Add(double value) {
    size_t bucket = static_cast<size_t>(value / bucket_width_);
    if (bucket >= counts_.size() - 1) {
      bucket = counts_.size() - 1;
    }
    ++counts_[bucket];
    ++total_;
  }
  size_t total() const { return total_; }
  const std::vector<uint64_t>& counts() const { return counts_; }
  double bucket_width() const { return bucket_width_; }
  // Fraction of samples in bucket i.
  double Fraction(size_t i) const {
    return total_ == 0 ? 0.0 : static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }

 private:
  double bucket_width_;
  std::vector<uint64_t> counts_;
  size_t total_ = 0;
};

// Per-worker accounting for the parallel speculation engine (§5.6): how much
// pre-execution each worker performed, how long jobs waited in the batch
// queue, and the snapshot-cache (hot trie-node) hit rate it observed.
struct SpecWorkerStats {
  uint64_t jobs = 0;              // transactions pre-executed by this worker
  uint64_t futures = 0;           // futures pre-executed by this worker
  double busy_seconds = 0;        // wall time spent executing jobs
  double queue_wait_seconds = 0;  // sum over jobs of (start - batch submit)
  uint64_t store_reads = 0;       // trie-node reads during this worker's jobs
  uint64_t store_cold_reads = 0;  // ... of which paid the miss latency

  // Fraction of this worker's snapshot reads served hot (no latency charge).
  double SnapshotHitRate() const {
    return store_reads == 0
               ? 0.0
               : static_cast<double>(store_reads - store_cold_reads) /
                     static_cast<double>(store_reads);
  }
};

// Element-wise sum over workers.
SpecWorkerStats SumSpecWorkerStats(const std::vector<SpecWorkerStats>& workers);

// Load imbalance: busiest worker's busy time over the mean busy time (1.0 is
// perfectly balanced; only workers that executed at least one job count).
double SpecWorkerImbalance(const std::vector<SpecWorkerStats>& workers);

// Reverse CDF: fraction of samples strictly exceeding x, evaluated on a grid.
std::vector<std::pair<double, double>> ReverseCdf(const std::vector<double>& samples,
                                                  double x_step, double x_max);

// Renders a unicode bar of width proportional to fraction (for terminal output).
std::string Bar(double fraction, size_t width = 40);

}  // namespace frn

#endif  // SRC_METRICS_METRICS_H_
