#include "src/metrics/metrics.h"

namespace frn {

double Samples::Percentile(double p) const {
  if (values_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SpecWorkerStats SumSpecWorkerStats(const std::vector<SpecWorkerStats>& workers) {
  SpecWorkerStats sum;
  for (const SpecWorkerStats& w : workers) {
    sum.jobs += w.jobs;
    sum.futures += w.futures;
    sum.busy_seconds += w.busy_seconds;
    sum.queue_wait_seconds += w.queue_wait_seconds;
    sum.store_reads += w.store_reads;
    sum.store_cold_reads += w.store_cold_reads;
  }
  return sum;
}

double SpecWorkerImbalance(const std::vector<SpecWorkerStats>& workers) {
  double busiest = 0;
  double total = 0;
  size_t active = 0;
  for (const SpecWorkerStats& w : workers) {
    if (w.jobs == 0) {
      continue;
    }
    busiest = std::max(busiest, w.busy_seconds);
    total += w.busy_seconds;
    ++active;
  }
  if (active == 0 || total <= 0) {
    return 1.0;
  }
  return busiest / (total / static_cast<double>(active));
}

std::vector<std::pair<double, double>> ReverseCdf(const std::vector<double>& samples,
                                                  double x_step, double x_max) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> out;
  for (double x = 0.0; x <= x_max + 1e-12; x += x_step) {
    auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    double exceeding = static_cast<double>(sorted.end() - it);
    out.emplace_back(x, sorted.empty() ? 0.0 : exceeding / static_cast<double>(sorted.size()));
  }
  return out;
}

std::string Bar(double fraction, size_t width) {
  if (fraction < 0) {
    fraction = 0;
  }
  if (fraction > 1) {
    fraction = 1;
  }
  size_t filled = static_cast<size_t>(fraction * static_cast<double>(width) + 0.5);
  std::string out;
  for (size_t i = 0; i < width; ++i) {
    out += (i < filled) ? "#" : ".";
  }
  return out;
}

}  // namespace frn
