// The DiCE (Dissemination-Consensus-Execution) network emulator. It stands in
// for the live Ethereum network of the paper's evaluation: transactions are
// broadcast and heard with per-peer gossip delays, miners with weighted hash
// power pack blocks from their own views (gas-price priority, per-miner tie
// breaking, local timestamps), a weighted random miner wins each
// exponentially-distributed consensus round, and every participating node
// executes the resulting chain. This reproduces the three §4.2 causes of
// many-future contexts: unpredictable arrivals of inter-dependent
// transactions, per-miner packing/ordering differences, and per-miner header
// fields.
#ifndef SRC_DICE_SIMULATOR_H_
#define SRC_DICE_SIMULATOR_H_

#include <string>
#include <vector>

#include "src/forerunner/node.h"

namespace frn {

struct TimedTx {
  Transaction tx;
  double sent_at = 0;
};

struct MinerModel {
  Address coinbase;
  double weight = 1.0;           // relative hash power
  double delay_mu = -1.0;        // lognormal gossip delay parameters
  double delay_sigma = 0.6;
  int timestamp_skew = 0;        // local clock offset in seconds
  uint64_t tie_salt = 0;         // same-price ordering randomization
};

struct DiceOptions {
  double mean_block_interval = 13.0;
  uint64_t block_gas_limit = 10'000'000;  // mildly binding: a backlog forms
  uint64_t base_timestamp = 1'700'000'000;
  size_t n_miners = 6;
  // Observer (our nodes') gossip delay distribution.
  double observer_delay_mu = -0.5;
  double observer_delay_sigma = 0.8;
  // Fraction of transactions the observer never hears before inclusion (sent
  // privately to miners or propagated away from our peers).
  double observer_unheard_rate = 0.05;
  // Miner gossip delay distribution.
  double miner_delay_mu = -0.8;
  double miner_delay_sigma = 0.6;
  // Margin a miner needs between hearing a tx and including it.
  double packing_margin = 0.5;
  // Off-critical-path pipeline period.
  double pipeline_period = 0.25;
  // Probability that a consensus round produces a temporary fork: a second
  // miner's competing block is executed first, then replaced by the winner
  // (the paper observes 8.4% of mined blocks end up on temporary forks).
  double fork_rate = 0.08;
  // How long the losing branch stays our head before the winning branch
  // arrives and triggers the reorg (off-path time to re-speculate).
  double fork_resolution_delay = 6.0;
  // Maximum length of a temporary fork branch: each fork event extends the
  // losing branch by 1..max_fork_depth blocks before the reorg unwinds them
  // all. Must not exceed the nodes' chain.max_reorg_depth. The default of 1
  // reproduces the single-block forks of earlier versions exactly (no extra
  // RNG draws).
  size_t max_fork_depth = 1;
  uint64_t seed = 0xD1CE;
};

// Everything measured about one node over a run.
struct NodeRunStats {
  ExecStrategy strategy;
  std::vector<TxExecRecord> records;  // in chain order
  double total_exec_seconds = 0;
  // Speculation CPU cost (serial sum over futures) and the modeled wall cost
  // (per round: max over workers), which is what the speculation phase costs
  // when idle cores absorb the fan-out.
  double speculation_seconds = 0;
  double speculation_wall_seconds = 0;
  size_t spec_workers = 1;
  std::vector<SpecWorkerStats> spec_worker_stats;
  double speculated_exec_seconds = 0;
  uint64_t futures_speculated = 0;
  uint64_t synthesis_failures = 0;
  std::vector<SynthesisStats> synthesis_stats;
  std::vector<ApStats> ap_stats;
  std::vector<Node::SpecSummary> executed_speculations;
  MempoolStats mempool;
  SpecCacheStats spec_cache;
  // Critical-path state-read attribution (per node — the process-global
  // registry mixes nodes) and the versioned store's structural counters.
  StateDbStats chain_state;
  VersionedStateStats versioned;
  bool versioned_enabled = false;
  bool state_view_active = false;
};

struct SimReport {
  std::string scenario;
  uint64_t blocks = 0;       // main-chain blocks
  uint64_t fork_blocks = 0;  // temporary-fork blocks executed then reorged away
  uint64_t max_fork_depth_seen = 0;  // deepest losing branch actually built
  uint64_t txs_packed = 0;   // main-chain transactions
  uint64_t txs_sent = 0;
  std::vector<double> heard_delays;     // per heard tx: execution - heard time
  uint64_t heard_count = 0;             // txs heard before execution
  bool roots_consistent = true;         // all nodes agreed on every state root
  std::vector<NodeRunStats> nodes;
  std::vector<Block> chain;             // the produced chain (headers + txs)
  std::vector<double> block_times;      // arrival time of each chain block
  // Observer heard time per transaction id (absent => never heard).
  std::vector<std::pair<uint64_t, double>> observer_heard;
};

class DiceSimulator {
 public:
  DiceSimulator(const DiceOptions& options, std::vector<TimedTx> traffic);

  // Runs the emulation, feeding identical traffic and identical blocks to
  // every node. Node 0 is conventionally the baseline.
  SimReport Run(const std::vector<Node*>& nodes, const std::string& scenario_name);

  const std::vector<MinerModel>& miners() const { return miners_; }

 private:
  struct HeardEvent {
    double time;
    size_t tx_index;
  };

  std::vector<Transaction> PackBlock(const MinerModel& miner, double now,
                                     const std::vector<double>& miner_heard,
                                     const std::vector<bool>& included,
                                     const std::unordered_map<Address, uint64_t,
                                                              AddressHasher>& chain_nonces);

  DiceOptions options_;
  std::vector<TimedTx> traffic_;
  std::vector<MinerModel> miners_;
  Rng rng_;
};

// Candidate miner list (coinbase, weight) for predictor configuration.
std::vector<std::pair<Address, double>> MinerCandidates(const std::vector<MinerModel>& miners);

}  // namespace frn

#endif  // SRC_DICE_SIMULATOR_H_
