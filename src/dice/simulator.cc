#include "src/dice/simulator.h"

#include <algorithm>
#include <cassert>

#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace frn {

namespace {

uint64_t TieHash(uint64_t salt, uint64_t tx_id) {
  uint64_t x = salt ^ (tx_id * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace

std::vector<std::pair<Address, double>> MinerCandidates(
    const std::vector<MinerModel>& miners) {
  std::vector<std::pair<Address, double>> out;
  out.reserve(miners.size());
  for (const MinerModel& m : miners) {
    out.emplace_back(m.coinbase, m.weight);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

DiceSimulator::DiceSimulator(const DiceOptions& options, std::vector<TimedTx> traffic)
    : options_(options), traffic_(std::move(traffic)), rng_(options.seed) {
  // Miner population with a skewed hash-power distribution (no miner
  // dominates, mirroring §4.2's probabilistic miner selection).
  for (size_t i = 0; i < options_.n_miners; ++i) {
    MinerModel m;
    m.coinbase = Address::FromId(0xA11CE000 + i);
    m.weight = 1.0 / static_cast<double>(1 + i);  // Zipf-ish
    m.delay_mu = options_.miner_delay_mu;
    m.delay_sigma = options_.miner_delay_sigma;
    m.timestamp_skew = static_cast<int>(rng_.NextBounded(7)) - 3;
    m.tie_salt = rng_.NextU64();
    miners_.push_back(m);
  }
}

std::vector<Transaction> DiceSimulator::PackBlock(
    const MinerModel& miner, double now, const std::vector<double>& miner_heard,
    const std::vector<bool>& included,
    const std::unordered_map<Address, uint64_t, AddressHasher>& chain_nonces) {
  // Candidate set: heard with enough margin and not yet on the chain.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < traffic_.size(); ++i) {
    if (!included[i] && miner_heard[i] + options_.packing_margin <= now) {
      candidates.push_back(i);
    }
  }
  // Price-priority order with per-miner random tie breaking (paper §4.2:
  // same-price transactions are ordered randomly by the official client).
  std::sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
    const Transaction& ta = traffic_[a].tx;
    const Transaction& tb = traffic_[b].tx;
    if (!(ta.gas_price == tb.gas_price)) {
      return tb.gas_price < ta.gas_price;
    }
    return TieHash(miner.tie_salt, ta.id) < TieHash(miner.tie_salt, tb.id);
  });
  // Fill the block respecting per-sender nonce chains.
  std::unordered_map<Address, uint64_t, AddressHasher> next_nonce = chain_nonces;
  std::vector<Transaction> packed;
  uint64_t gas_used = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t idx : candidates) {
      const Transaction& tx = traffic_[idx].tx;
      if (gas_used + tx.gas_limit > options_.block_gas_limit) {
        continue;
      }
      bool already = false;
      for (const Transaction& p : packed) {
        if (p.id == tx.id) {
          already = true;
          break;
        }
      }
      if (already) {
        continue;
      }
      auto it = next_nonce.find(tx.sender);
      uint64_t expected = (it != next_nonce.end()) ? it->second : 0;
      if (tx.nonce != expected) {
        continue;
      }
      packed.push_back(tx);
      next_nonce[tx.sender] = expected + 1;
      gas_used += tx.gas_limit;
      progress = true;
    }
  }
  return packed;
}

SimReport DiceSimulator::Run(const std::vector<Node*>& nodes,
                             const std::string& scenario_name) {
  static Counter* rounds = MetricsRegistry::Global().GetCounter("dice.rounds");
  static Counter* forks = MetricsRegistry::Global().GetCounter("dice.forks");
  static Counter* pipeline_runs = MetricsRegistry::Global().GetCounter("dice.pipeline_runs");
  static SecondsCounter* round_wall =
      MetricsRegistry::Global().GetSeconds("dice.round_wall_seconds");
  static SecondsCounter* pipeline_wall =
      MetricsRegistry::Global().GetSeconds("dice.pipeline_wall_seconds");
  static ExpHistogram* heard_delay =
      MetricsRegistry::Global().GetHistogram("dice.heard_delay_seconds");
  TraceCollector* collector = &TraceCollector::Global();

  SimReport report;
  report.scenario = scenario_name;
  report.txs_sent = traffic_.size();
  report.nodes.resize(nodes.size());
  for (size_t n = 0; n < nodes.size(); ++n) {
    report.nodes[n].strategy = ExecStrategy::kBaseline;
  }

  // Sample dissemination delays.
  std::vector<double> observer_heard(traffic_.size());
  std::vector<std::vector<double>> miner_heard(miners_.size(),
                                               std::vector<double>(traffic_.size()));
  for (size_t i = 0; i < traffic_.size(); ++i) {
    // Only modest transactions go unheard (private relays and thin gossip
    // paths); heavyweight transactions propagate widely, which is why the
    // paper's time-weighted heard rate exceeds the unweighted one.
    if (traffic_[i].tx.gas_limit < 400'000 && rng_.Chance(options_.observer_unheard_rate)) {
      observer_heard[i] = 1e18;  // effectively never heard
    } else {
      observer_heard[i] =
          traffic_[i].sent_at +
          rng_.NextLogNormal(options_.observer_delay_mu, options_.observer_delay_sigma);
    }
    for (size_t m = 0; m < miners_.size(); ++m) {
      miner_heard[m][i] =
          traffic_[i].sent_at +
          rng_.NextLogNormal(miners_[m].delay_mu, miners_[m].delay_sigma);
    }
  }

  // Traffic ends when the last transaction was sent; run a little longer so
  // stragglers get packed.
  double horizon = 0;
  for (const TimedTx& t : traffic_) {
    horizon = std::max(horizon, t.sent_at);
  }
  horizon += 4 * options_.mean_block_interval;

  std::vector<bool> included(traffic_.size(), false);
  std::unordered_map<Address, uint64_t, AddressHasher> chain_nonces;
  double total_weight = 0;
  for (const MinerModel& m : miners_) {
    total_weight += m.weight;
  }

  // Chronological event loop: heard events interleaved with block events; the
  // speculation pipeline runs whenever off-critical-path time accumulates.
  std::vector<size_t> heard_order(traffic_.size());
  for (size_t i = 0; i < traffic_.size(); ++i) {
    heard_order[i] = i;
  }
  std::sort(heard_order.begin(), heard_order.end(),
            [&](size_t a, size_t b) { return observer_heard[a] < observer_heard[b]; });

  size_t next_heard = 0;
  double now = 0;
  double next_block_time = rng_.NextExponential(options_.mean_block_interval);
  double last_pipeline = 0;
  uint64_t block_number = 0;
  uint64_t last_block_ts = options_.base_timestamp;

  auto deliver_heard_until = [&](double t) {
    while (next_heard < heard_order.size() && observer_heard[heard_order[next_heard]] <= t) {
      size_t idx = heard_order[next_heard];
      for (Node* node : nodes) {
        node->OnHeard(traffic_[idx].tx, observer_heard[idx]);
      }
      ++next_heard;
    }
  };

  while (now < horizon) {
    // Run the off-critical-path pipeline periodically between blocks.
    double next_pipeline = last_pipeline + options_.pipeline_period;
    double next_event = std::min(next_block_time, next_pipeline);
    if (next_event > horizon) {
      break;
    }
    deliver_heard_until(next_event);
    now = next_event;
    if (next_pipeline <= next_block_time) {
      TraceSpan pipeline_span(collector, "dice", "dice.pipeline", pipeline_wall);
      pipeline_span.AddArg(TraceArg::F64("sim_time", now));
      for (Node* node : nodes) {
        node->RunSpeculationPipeline(now);
      }
      pipeline_runs->Add();
      last_pipeline = now;
      continue;
    }

    // ---- Consensus: a weighted random miner wins this round ----
    double pick = rng_.NextDouble() * total_weight;
    size_t winner = 0;
    for (size_t m = 0; m < miners_.size(); ++m) {
      pick -= miners_[m].weight;
      if (pick <= 0) {
        winner = m;
        break;
      }
    }
    const MinerModel& miner = miners_[winner];
    std::vector<Transaction> txs =
        PackBlock(miner, now, miner_heard[winner], included, chain_nonces);
    next_block_time = now + rng_.NextExponential(options_.mean_block_interval);
    if (txs.empty()) {
      continue;
    }

    // Temporary fork: a competing branch from another miner reaches us first,
    // gets executed block by block, and is reorged away when the winner
    // arrives. At max_fork_depth == 1 this draws exactly the RNG sequence of
    // the single-block fork flow (no depth draw); deeper settings let the
    // rival extend its losing branch before the resolution.
    if (miners_.size() > 1 && rng_.Chance(options_.fork_rate)) {
      size_t rival = (winner + 1 + rng_.NextBounded(miners_.size() - 1)) % miners_.size();
      const MinerModel& rival_miner = miners_[rival];
      size_t target_depth =
          options_.max_fork_depth <= 1
              ? 1
              : 1 + static_cast<size_t>(rng_.NextBounded(options_.max_fork_depth));
      // The rival packs against its own view of the chain; its inclusions and
      // nonce advances stay local to the losing branch so the winner can still
      // claim the same transactions.
      std::vector<bool> rival_included = included;
      auto rival_nonces = chain_nonces;
      uint64_t rival_ts = last_block_ts;
      size_t executed_depth = 0;
      for (size_t d = 0; d < target_depth; ++d) {
        std::vector<Transaction> rival_txs =
            PackBlock(rival_miner, now, miner_heard[rival], rival_included, rival_nonces);
        if (rival_txs.empty()) {
          break;
        }
        Block fork_block;
        fork_block.header.number = block_number + 1 + d;
        fork_block.header.timestamp =
            std::max(options_.base_timestamp + static_cast<uint64_t>(now) +
                         static_cast<uint64_t>(rival_miner.timestamp_skew + 3) - 3,
                     rival_ts + 1);
        rival_ts = fork_block.header.timestamp;
        fork_block.header.coinbase = rival_miner.coinbase;
        fork_block.header.gas_limit = options_.block_gas_limit;
        fork_block.txs = std::move(rival_txs);
        for (const Transaction& tx : fork_block.txs) {
          rival_nonces[tx.sender] = tx.nonce + 1;
          for (size_t i = 0; i < traffic_.size(); ++i) {
            if (traffic_[i].tx.id == tx.id) {
              rival_included[i] = true;
              break;
            }
          }
        }
        Hash first_root;
        for (size_t n = 0; n < nodes.size(); ++n) {
          BlockExecReport exec = nodes[n]->ExecuteBlock(fork_block, now);
          if (n == 0) {
            first_root = exec.state_root;
          } else if (!(exec.state_root == first_root)) {
            report.roots_consistent = false;
          }
          for (TxExecRecord& r : exec.txs) {
            r.on_fork = true;
            report.nodes[n].records.push_back(r);
          }
        }
        ++report.fork_blocks;
        ++executed_depth;
      }
      if (executed_depth > 0) {
        report.max_fork_depth_seen =
            std::max(report.max_fork_depth_seen, static_cast<uint64_t>(executed_depth));
        forks->Add();
        EmitInstant(collector, "dice", "dice.fork",
                    {TraceArg::U64("block", block_number + 1), TraceArg::F64("sim_time", now)});
        // The losing branch stays our head while the winner's branch
        // propagates; the orphaned transactions re-enter the pool on reorg
        // and the speculation pipeline gets to re-process them.
        for (size_t d = 0; d < executed_depth; ++d) {
          for (Node* node : nodes) {
            node->RollbackHead();
          }
        }
        double winner_time = now + options_.fork_resolution_delay;
        for (double t = now + options_.pipeline_period; t < winner_time;
             t += options_.pipeline_period) {
          deliver_heard_until(t);
          for (Node* node : nodes) {
            node->RunSpeculationPipeline(t);
          }
        }
        deliver_heard_until(winner_time);
        now = winner_time;
        next_block_time = std::max(next_block_time, now + 1.0);
      }
    }

    Block block;
    ++block_number;
    block.header.number = block_number;
    uint64_t ts = options_.base_timestamp + static_cast<uint64_t>(now) +
                  static_cast<uint64_t>(miner.timestamp_skew + 3) - 3;
    block.header.timestamp = std::max(ts, last_block_ts + 1);
    last_block_ts = block.header.timestamp;
    block.header.coinbase = miner.coinbase;
    block.header.gas_limit = options_.block_gas_limit;
    block.txs = txs;

    for (const Transaction& tx : txs) {
      chain_nonces[tx.sender] = tx.nonce + 1;
      for (size_t i = 0; i < traffic_.size(); ++i) {
        if (traffic_[i].tx.id == tx.id) {
          included[i] = true;
          if (observer_heard[i] <= now) {
            ++report.heard_count;
            report.heard_delays.push_back(now - observer_heard[i]);
            heard_delay->Record(now - observer_heard[i]);
          }
          break;
        }
      }
    }

    // ---- Execution phase on every node ----
    {
      TraceSpan round_span(collector, "dice", "dice.round", round_wall);
      round_span.AddArg(TraceArg::U64("block", block_number));
      round_span.AddArg(TraceArg::U64("txs", txs.size()));
      round_span.AddArg(TraceArg::F64("sim_time", now));
      Hash first_root;
      for (size_t n = 0; n < nodes.size(); ++n) {
        BlockExecReport exec = nodes[n]->ExecuteBlock(block, now);
        if (n == 0) {
          first_root = exec.state_root;
        } else if (!(exec.state_root == first_root)) {
          report.roots_consistent = false;
        }
        report.nodes[n].total_exec_seconds += exec.total_seconds;
        for (TxExecRecord& r : exec.txs) {
          report.nodes[n].records.push_back(r);
        }
      }
      rounds->Add();
    }
    report.chain.push_back(std::move(block));
    report.block_times.push_back(now);
    ++report.blocks;
    report.txs_packed += txs.size();

    // Post-block speculation for the next block's predictions.
    for (Node* node : nodes) {
      node->RunSpeculationPipeline(now);
    }
    last_pipeline = now;
  }

  for (size_t i = 0; i < traffic_.size(); ++i) {
    if (observer_heard[i] < 1e17) {
      report.observer_heard.emplace_back(traffic_[i].tx.id, observer_heard[i]);
    }
  }
  for (size_t n = 0; n < nodes.size(); ++n) {
    report.nodes[n].speculation_seconds = nodes[n]->total_speculation_seconds();
    report.nodes[n].speculation_wall_seconds = nodes[n]->total_speculation_wall_seconds();
    report.nodes[n].spec_workers = nodes[n]->spec_workers();
    report.nodes[n].spec_worker_stats = nodes[n]->spec_worker_stats();
    report.nodes[n].speculated_exec_seconds = nodes[n]->total_speculated_exec_seconds();
    report.nodes[n].futures_speculated = nodes[n]->futures_speculated();
    report.nodes[n].synthesis_failures = nodes[n]->synthesis_failures();
    report.nodes[n].synthesis_stats = nodes[n]->synthesis_stats();
    report.nodes[n].ap_stats = nodes[n]->ap_stats();
    report.nodes[n].executed_speculations = nodes[n]->executed_speculations();
    report.nodes[n].mempool = nodes[n]->mempool_stats();
    report.nodes[n].spec_cache = nodes[n]->spec_cache_stats();
    report.nodes[n].chain_state = nodes[n]->chain_state_stats();
    report.nodes[n].versioned = nodes[n]->versioned_stats();
    report.nodes[n].versioned_enabled = nodes[n]->versioned_enabled();
    report.nodes[n].state_view_active = nodes[n]->view_active();
  }
  return report;
}

}  // namespace frn
