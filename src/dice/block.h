// A consensus-produced block: the header (execution context) plus the ordered
// transaction list. Kept header-only so both the node and the network
// emulator can share it.
#ifndef SRC_DICE_BLOCK_H_
#define SRC_DICE_BLOCK_H_

#include <vector>

#include "src/evm/context.h"

namespace frn {

struct Block {
  BlockContext header;
  std::vector<Transaction> txs;
};

}  // namespace frn

#endif  // SRC_DICE_BLOCK_H_
